(** Fixed-width multi-precision arithmetic on little-endian [int64] limb
    arrays, interpreted as unsigned. This is the substrate for the BLS12-381
    fields used by the Groth16 baseline; no external bignum library is used. *)

val mul64 : int64 -> int64 -> int64 * int64
(** [mul64 a b] is the full 128-bit product [(hi, lo)] of two unsigned 64-bit
    values. *)

val add_carry : int64 -> int64 -> int64 -> int64 * int64
(** [add_carry a b c] with [c] in [{0,1}] is [(sum, carry_out)]. *)

val sub_borrow : int64 -> int64 -> int64 -> int64 * int64
(** [sub_borrow a b brw] with [brw] in [{0,1}] is [(diff, borrow_out)]. *)

val compare : int64 array -> int64 array -> int
(** Unsigned comparison of equal-length limb arrays. *)

val is_zero : int64 array -> bool

val add : int64 array -> int64 array -> int64 array * int64
(** Full addition; returns (limbs, carry). *)

val sub : int64 array -> int64 array -> int64 array * int64
(** Full subtraction; returns (limbs, borrow). *)

val mul : int64 array -> int64 array -> int64 array
(** Schoolbook product of an [n]-limb and an [m]-limb number, [n+m] limbs. *)

val neg_inv64 : int64 -> int64
(** [neg_inv64 m0] for odd [m0] is [-m0^-1 mod 2^64] (the Montgomery
    constant). *)

val bit : int64 array -> int -> bool
(** [bit x i] is bit [i] (little-endian) of [x]. *)

val bits : int64 array -> int
(** Position of the highest set bit plus one (0 for zero). *)

val of_hex : int -> string -> int64 array
(** [of_hex n s] parses a big-endian hex string (without "0x") into [n]
    little-endian limbs. *)

val to_hex : int64 array -> string
(** Big-endian hex rendering with leading zeros trimmed. *)
