lib/field/gf2.ml: Format Gf Int64
