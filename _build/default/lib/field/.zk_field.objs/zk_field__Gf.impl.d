lib/field/gf.ml: Array Format Int64 Printf Zk_util
