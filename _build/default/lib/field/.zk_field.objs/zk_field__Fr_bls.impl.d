lib/field/fr_bls.ml: Array Int64 Limbs Mont
