lib/field/fr_bls.mli: Mont
