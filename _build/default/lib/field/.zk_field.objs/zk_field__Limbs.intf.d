lib/field/limbs.mli:
