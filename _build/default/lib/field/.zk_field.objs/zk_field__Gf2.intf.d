lib/field/gf2.mli: Format Gf Zk_util
