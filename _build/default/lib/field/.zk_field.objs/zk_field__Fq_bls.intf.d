lib/field/fq_bls.mli: Mont
