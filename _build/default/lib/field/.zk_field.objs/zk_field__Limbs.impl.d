lib/field/limbs.ml: Array Buffer Char Int64 Printf String
