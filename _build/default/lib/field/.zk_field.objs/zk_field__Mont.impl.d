lib/field/mont.ml: Array Format Int64 Limbs Zk_util
