lib/field/gf.mli: Format Zk_util
