lib/field/fq_bls.ml: Mont
