lib/field/mont.mli: Format Zk_util
