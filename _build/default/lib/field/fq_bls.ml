include Mont.Make (struct
  let name = "Fq_bls"
  let limbs = 6

  let modulus_hex =
    "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624"
    ^ "1eabfffeb153ffffb9feffffffffaaab"
end)
