lib/ntt/ntt.mli: Zk_field
