lib/ntt/ntt.ml: Array Hashtbl Zk_field
