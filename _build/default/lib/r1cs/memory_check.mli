(** Offline memory checking in-circuit (Blum et al.; the technique behind
    Spartan's SPARK sparse-polynomial commitment, whose 4-gamma multiset
    hashes the paper's 128-bit configuration instantiates — Sec. VII-A).

    Where {!Litmus_circuit} pays O(memory size) multiplexer constraints per
    access, offline checking pays O(1): every access contributes one tuple
    [(addr, value, timestamp)] to a read multiset and one to a write
    multiset, and a single product-accumulator equation
    [Init * WS = RS * Final] (checked under 4 independent random
    [(gamma, delta)] pairs) forces every read to return the value of the
    latest write. Timestamp ordering is enforced with width-checked
    comparisons.

    The random pairs must be sampled {e after} the trace is fixed; in the
    multi-phase instantiation they arrive as verifier challenges, which is
    how this module takes them (public inputs). *)

type op = Load of int | Store of int * int (** address / address, value *)

val reference : init:int array -> op list -> int list * int array
(** (values returned by the loads, final memory contents). *)

val build :
  Builder.t ->
  challenges:(Zk_field.Gf.t * Zk_field.Gf.t) array ->
  init:int array ->
  op list ->
  Builder.var list
(** Append the checked memory to a builder: the initial contents are public
    inputs, the access trace is witness data, and the returned wires are the
    loads' results. The challenge pairs become public inputs too.
    @raise Invalid_argument on an inconsistent trace (caught by the multiset
    equation at construction time) or empty memory. *)

val circuit :
  ?value_bits:int ->
  challenges:(Zk_field.Gf.t * Zk_field.Gf.t) array ->
  init:int array ->
  op list ->
  unit ->
  R1cs.instance * R1cs.assignment
(** A standalone instance around {!build}, revealing the load results. *)

val constraints_per_access : memory:int -> int
(** Upper bound on this scheme's constraints per access (independent of
    [memory]); compare {!multiplexer_constraints_per_access}. *)

val multiplexer_constraints_per_access : memory:int -> int
(** What the one-hot multiplexer approach of {!Litmus_circuit} pays. *)
