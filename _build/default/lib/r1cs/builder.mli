(** Concrete circuit builder: the front end that turns programs into R1CS
    (step (1) of Fig. 2, "arithmetization").

    The builder is {e concrete}: every variable is allocated together with its
    value, so finalization yields both the instance and a satisfying
    assignment. This matches NoCap's system model, where the host CPU computes
    all wire values and ships them to the accelerator (Sec. II). *)

type t

type var
(** A wire. *)

type lc = (var * Zk_field.Gf.t) list
(** A linear combination of wires. *)

val create : unit -> t

val one : var
(** The constant-1 wire (io slot 0). *)

val input : t -> Zk_field.Gf.t -> var
(** Allocate a public input with the given value. *)

val witness : t -> Zk_field.Gf.t -> var
(** Allocate a private witness wire with the given value. *)

val value : t -> var -> Zk_field.Gf.t

val lc_var : var -> lc
val lc_const : Zk_field.Gf.t -> lc
val lc_scale : Zk_field.Gf.t -> lc -> lc
val lc_add : lc -> lc -> lc
val lc_value : t -> lc -> Zk_field.Gf.t

val constrain : t -> lc -> lc -> lc -> unit
(** [constrain t a b c] adds the constraint [<a,z> * <b,z> = <c,z>].
    @raise Invalid_argument if the current assignment violates it (catching
    circuit bugs at construction time). *)

val num_constraints : t -> int
val num_witness : t -> int

val finalize : t -> R1cs.instance * R1cs.assignment
(** Pad to the next valid power-of-two square instance and return it with its
    satisfying assignment. *)
