module Gf = Zk_field.Gf

type t = { limbs : Builder.var array }

let limb_bits = 16

let base = 1 lsl limb_bits

(* --- concrete helpers on int arrays (little-endian base-2^16 limbs), used
   only to compute witness values --- *)

module C = struct
  let compare a b =
    let n = max (Array.length a) (Array.length b) in
    let limb x i = if i < Array.length x then x.(i) else 0 in
    let rec go i =
      if i < 0 then 0
      else
        let c = Stdlib.compare (limb a i) (limb b i) in
        if c <> 0 then c else go (i - 1)
    in
    go (n - 1)

  let is_zero a = Array.for_all (( = ) 0) a

  let sub a b =
    (* a >= b assumed; result has length a. *)
    let out = Array.make (Array.length a) 0 in
    let borrow = ref 0 in
    for i = 0 to Array.length a - 1 do
      let bi = if i < Array.length b then b.(i) else 0 in
      let v = a.(i) - bi - !borrow in
      if v < 0 then begin
        out.(i) <- v + base;
        borrow := 1
      end
      else begin
        out.(i) <- v;
        borrow := 0
      end
    done;
    assert (!borrow = 0);
    out

  let shift_left_bits a k =
    (* Multiply by 2^k; result grows as needed. *)
    let total_bits = (Array.length a * limb_bits) + k in
    let out = Array.make ((total_bits / limb_bits) + 1) 0 in
    for i = 0 to Array.length a - 1 do
      for b = 0 to limb_bits - 1 do
        if (a.(i) lsr b) land 1 = 1 then begin
          let pos = (i * limb_bits) + b + k in
          out.(pos / limb_bits) <- out.(pos / limb_bits) lor (1 lsl (pos mod limb_bits))
        end
      done
    done;
    out

  let bit_length a =
    let rec go i =
      if i < 0 then 0
      else if a.(i) = 0 then go (i - 1)
      else
        let rec msb b = if a.(i) lsr b = 0 then b else msb (b + 1) in
        (i * limb_bits) + msb 0
    in
    go (Array.length a - 1)

  (* Binary long division: (quotient, remainder). *)
  let div_rem a m =
    if is_zero m then invalid_arg "Bignum: division by zero";
    let q = Array.make (Array.length a) 0 in
    let r = ref (Array.copy a) in
    let shift = max 0 (bit_length a - bit_length m) in
    for k = shift downto 0 do
      let shifted = shift_left_bits m k in
      if compare !r shifted >= 0 then begin
        r := sub !r (Array.append shifted (Array.make (max 0 (Array.length !r - Array.length shifted)) 0));
        q.(k / limb_bits) <- q.(k / limb_bits) lor (1 lsl (k mod limb_bits))
      end
    done;
    (q, Array.sub !r 0 (Array.length a))

  let of_int64 ~limbs v =
    Array.init limbs (fun i ->
        Int64.to_int (Int64.logand (Int64.shift_right_logical v (limb_bits * i)) 0xFFFFL))

  let to_int64 a =
    Array.to_list a
    |> List.mapi (fun i l -> Int64.shift_left (Int64.of_int l) (limb_bits * i))
    |> List.fold_left Int64.logor 0L
end

(* --- wires --- *)

let concrete b t = Array.map (fun w -> Int64.to_int (Gf.to_int64 (Builder.value b w))) t.limbs

let alloc_limb b ~secret v =
  let w =
    if secret then Builder.witness b (Gf.of_int v) else Builder.input b (Gf.of_int v)
  in
  ignore (Gadgets.bits_of b ~width:limb_bits w);
  w

let of_int64 b ~secret ~limbs v =
  if limbs < 1 || limbs > 32 then invalid_arg "Bignum.of_int64: limbs";
  if limbs < 4 && Int64.unsigned_compare v (Int64.shift_left 1L (limb_bits * limbs)) >= 0
  then invalid_arg "Bignum.of_int64: value does not fit";
  { limbs = Array.map (alloc_limb b ~secret) (C.of_int64 ~limbs v) }

let to_int64 b t = C.to_int64 (concrete b t)

let constant b ~limbs v = of_int64 b ~secret:false ~limbs v

(* Witness a fresh limb array for a concrete value. *)
let witness_limbs b (vals : int array) =
  { limbs = Array.map (fun v -> alloc_limb b ~secret:true v) vals }

(* Carry-normalize per-column linear combinations into a limb array.
   Column sums stay far below the field modulus (<= 2^40 for <= 256 terms),
   so the field arithmetic is exact. *)
let normalize_columns b columns =
  let n = Array.length columns in
  let out = Array.make n Builder.one in
  let carry = ref [] in
  for k = 0 to n - 1 do
    let col_lc = Builder.lc_add columns.(k) !carry in
    let v = Int64.to_int (Gf.to_int64 (Builder.lc_value b col_lc)) in
    let digit = alloc_limb b ~secret:true (v land (base - 1)) in
    let c = Builder.witness b (Gf.of_int (v asr limb_bits)) in
    ignore (Gadgets.bits_of b ~width:(limb_bits + 10) c);
    Gadgets.assert_equal b col_lc
      (Builder.lc_add (Builder.lc_var digit)
         (Builder.lc_scale (Gf.of_int base) (Builder.lc_var c)));
    out.(k) <- digit;
    carry := [ (c, Gf.one) ]
  done;
  (* No residual carry: the caller sizes the column array to hold the full
     result. *)
  Gadgets.assert_equal b !carry [];
  { limbs = out }

let mul b x y =
  let n = Array.length x.limbs and m = Array.length y.limbs in
  let columns = Array.make (n + m) [] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let p = Gadgets.mul b x.limbs.(i) y.limbs.(j) in
      columns.(i + j) <- (p, Gf.one) :: columns.(i + j)
    done
  done;
  normalize_columns b columns

let add b x y =
  let n = max (Array.length x.limbs) (Array.length y.limbs) + 1 in
  let columns =
    Array.init n (fun k ->
        (if k < Array.length x.limbs then [ (x.limbs.(k), Gf.one) ] else [])
        @ if k < Array.length y.limbs then [ (y.limbs.(k), Gf.one) ] else [])
  in
  normalize_columns b columns

let assert_equal b x y =
  let n = max (Array.length x.limbs) (Array.length y.limbs) in
  for k = 0 to n - 1 do
    let lc t = if k < Array.length t.limbs then Builder.lc_var t.limbs.(k) else [] in
    Gadgets.assert_equal b (lc x) (lc y)
  done

let less_than b x y =
  let n = Array.length x.limbs in
  if Array.length y.limbs <> n then invalid_arg "Bignum.less_than: widths differ";
  (* Borrow chain: at each limb,
     x_k - y_k - borrow_in + base = digit + base * (1 - borrow_out). *)
  let borrow = ref (Gadgets.add_lc b (Builder.lc_const Gf.zero)) in
  for k = 0 to n - 1 do
    let xv = Int64.to_int (Gf.to_int64 (Builder.value b x.limbs.(k))) in
    let yv = Int64.to_int (Gf.to_int64 (Builder.value b y.limbs.(k))) in
    let bin = Int64.to_int (Gf.to_int64 (Builder.value b !borrow)) in
    let v = xv - yv - bin in
    let bout = if v < 0 then 1 else 0 in
    let digit = v + (bout * base) in
    let digit_w = alloc_limb b ~secret:true digit in
    let bout_w = Builder.witness b (Gf.of_int bout) in
    Gadgets.assert_bool b bout_w;
    (* x_k - y_k - borrow_in = digit - base * borrow_out *)
    Gadgets.assert_equal b
      (Builder.lc_add (Builder.lc_var x.limbs.(k))
         (Builder.lc_add
            (Builder.lc_scale (Gf.neg Gf.one) (Builder.lc_var y.limbs.(k)))
            (Builder.lc_scale (Gf.neg Gf.one) (Builder.lc_var !borrow))))
      (Builder.lc_add (Builder.lc_var digit_w)
         (Builder.lc_scale (Gf.neg (Gf.of_int base)) (Builder.lc_var bout_w)));
    borrow := bout_w
  done;
  !borrow

let mod_reduce b x ~modulus =
  let xc = concrete b x and mc = concrete b modulus in
  let qc, rc = C.div_rem xc mc in
  let q = witness_limbs b qc in
  let r = witness_limbs b (Array.sub rc 0 (Array.length modulus.limbs)) in
  (* The truncation of r to the modulus width must be lossless. *)
  Array.iteri
    (fun i v -> if i >= Array.length modulus.limbs && v <> 0 then assert false)
    rc;
  let qm = mul b q modulus in
  let qm_plus_r = add b qm r in
  assert_equal b qm_plus_r x;
  let lt = less_than b r modulus in
  Gadgets.assert_equal b (Builder.lc_var lt) (Builder.lc_const Gf.one);
  r

let modexp b ~base:base_n ~exponent ~modulus =
  if exponent < 1 then invalid_arg "Bignum.modexp: exponent";
  let bits =
    let rec go e acc = if e = 0 then acc else go (e lsr 1) ((e land 1) :: acc) in
    go exponent []
  in
  match bits with
  | [] -> assert false (* exponent >= 1 *)
  | _ :: rest ->
    (* The leading bit seeds the accumulator with base mod m. *)
    let acc = ref (mod_reduce b base_n ~modulus) in
    List.iter
      (fun bit ->
        acc := mod_reduce b (mul b !acc !acc) ~modulus;
        if bit = 1 then acc := mod_reduce b (mul b !acc base_n) ~modulus)
      rest;
    !acc
