module Gf = Zk_field.Gf

type expr =
  | Const of int64
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Lt of int * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | If of expr * expr * expr
  | Let of string * expr * expr

type stmt =
  | Assert_eq of expr * expr
  | Assert_bool of expr
  | Reveal of string * expr

type program = stmt list

type env = {
  inputs : (string * int64) list;
  secrets : (string * int64) list;
}

(* --- reference interpreter --- *)

let as_bool name v =
  if Gf.equal v Gf.zero then false
  else if Gf.equal v Gf.one then true
  else invalid_arg (Printf.sprintf "Lang: %s is not Boolean" name)

let fits_width w v =
  w >= 1 && w <= 62
  && Int64.unsigned_compare (Gf.to_int64 v) (Int64.shift_left 1L w) < 0

let rec interp bindings expr =
  match expr with
  | Const c -> Gf.of_int64 c
  | Var name -> (
    match List.assoc_opt name bindings with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lang: unbound name %s" name))
  | Add (a, b) -> Gf.add (interp bindings a) (interp bindings b)
  | Sub (a, b) -> Gf.sub (interp bindings a) (interp bindings b)
  | Mul (a, b) -> Gf.mul (interp bindings a) (interp bindings b)
  | Eq (a, b) ->
    if Gf.equal (interp bindings a) (interp bindings b) then Gf.one else Gf.zero
  | Lt (w, a, b) ->
    let va = interp bindings a and vb = interp bindings b in
    if not (fits_width w va && fits_width w vb) then
      invalid_arg "Lang: Lt operand exceeds its width";
    if Int64.unsigned_compare (Gf.to_int64 va) (Gf.to_int64 vb) < 0 then Gf.one
    else Gf.zero
  | And (a, b) ->
    let va = as_bool "And" (interp bindings a) and vb = as_bool "And" (interp bindings b) in
    if va && vb then Gf.one else Gf.zero
  | Or (a, b) ->
    let va = as_bool "Or" (interp bindings a) and vb = as_bool "Or" (interp bindings b) in
    if va || vb then Gf.one else Gf.zero
  | Not a -> if as_bool "Not" (interp bindings a) then Gf.zero else Gf.one
  | If (c, t, e) ->
    if as_bool "If" (interp bindings c) then interp bindings t else interp bindings e
  | Let (name, bound, body) -> interp ((name, interp bindings bound) :: bindings) body

let base_bindings env =
  List.map (fun (n, v) -> (n, Gf.of_int64 v)) env.inputs
  @ List.map (fun (n, v) -> (n, Gf.of_int64 v)) env.secrets

let interpret env expr = interp (base_bindings env) expr

let interpret_program env program =
  let bindings = base_bindings env in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Assert_eq (a, b) ->
        if not (Gf.equal (interp bindings a) (interp bindings b)) then
          invalid_arg "Lang: assertion failed";
        None
      | Assert_bool e ->
        ignore (as_bool "Assert_bool" (interp bindings e));
        None
      | Reveal (name, e) -> Some (name, interp bindings e))
    program

(* --- compiler --- *)

let compile env program =
  let b = Builder.create () in
  let wires =
    List.map (fun (n, v) -> (n, Builder.input b (Gf.of_int64 v))) env.inputs
    @ List.map (fun (n, v) -> (n, Builder.witness b (Gf.of_int64 v))) env.secrets
  in
  (* Compile an expression to a wire. Values are tracked concretely by the
     builder, so semantic checks (Boolean-ness, widths) mirror the
     interpreter exactly. *)
  let rec comp bindings expr =
    match expr with
    | Const c -> Gadgets.add_lc b (Builder.lc_const (Gf.of_int64 c))
    | Var name -> (
      match List.assoc_opt name bindings with
      | Some w -> w
      | None -> invalid_arg (Printf.sprintf "Lang: unbound name %s" name))
    | Add (x, y) -> Gadgets.add b (comp bindings x) (comp bindings y)
    | Sub (x, y) ->
      let wx = comp bindings x and wy = comp bindings y in
      Gadgets.add_lc b
        (Builder.lc_add (Builder.lc_var wx) (Builder.lc_scale (Gf.neg Gf.one) (Builder.lc_var wy)))
    | Mul (x, y) -> Gadgets.mul b (comp bindings x) (comp bindings y)
    | Eq (x, y) -> Gadgets.equal b (comp bindings x) (comp bindings y)
    | Lt (w, x, y) ->
      let wx = comp bindings x and wy = comp bindings y in
      if not (fits_width w (Builder.value b wx) && fits_width w (Builder.value b wy))
      then invalid_arg "Lang: Lt operand exceeds its width";
      (* Bind the operands to their width so the comparison is sound. *)
      ignore (Gadgets.bits_of b ~width:w wx);
      ignore (Gadgets.bits_of b ~width:w wy);
      Gadgets.less_than b ~width:w wx wy
    | And (x, y) ->
      let wx = bool_wire bindings x and wy = bool_wire bindings y in
      Gadgets.band b wx wy
    | Or (x, y) ->
      let wx = bool_wire bindings x and wy = bool_wire bindings y in
      Gadgets.bor b wx wy
    | Not x -> Gadgets.bnot b (bool_wire bindings x)
    | If (c, t, e) ->
      let wc = bool_wire bindings c in
      Gadgets.select b ~cond:wc (comp bindings t) (comp bindings e)
    | Let (name, bound, body) ->
      let wb = comp bindings bound in
      comp ((name, wb) :: bindings) body
  and bool_wire bindings expr =
    let w = comp bindings expr in
    ignore (as_bool "compile" (Builder.value b w));
    Gadgets.assert_bool b w;
    w
  in
  let outputs = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Assert_eq (x, y) ->
        let wx = comp wires x and wy = comp wires y in
        Gadgets.assert_equal b (Builder.lc_var wx) (Builder.lc_var wy)
      | Assert_bool e -> ignore (bool_wire wires e)
      | Reveal (name, e) ->
        let w = comp wires e in
        let v = Builder.value b w in
        let out = Builder.input b v in
        Gadgets.assert_equal b (Builder.lc_var w) (Builder.lc_var out);
        outputs := (name, v) :: !outputs)
    program;
  let inst, asn = Builder.finalize b in
  (inst, asn, List.rev !outputs)
