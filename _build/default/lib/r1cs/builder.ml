module Gf = Zk_field.Gf

type var = Witness of int | Io of int

type lc = (var * Gf.t) list

(* Growable value store. *)
module Vec = struct
  type t = { mutable data : Gf.t array; mutable len : int }

  let create () = { data = Array.make 16 Gf.zero; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) Gf.zero in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1;
    v.len - 1

  let get v i =
    if i >= v.len then invalid_arg "Builder: variable out of range";
    v.data.(i)

  let to_array v = Array.sub v.data 0 v.len
end

type t = {
  wvals : Vec.t;
  iovals : Vec.t;
  mutable constraints : (lc * lc * lc) list; (* reversed *)
  mutable n_constraints : int;
}

let create () =
  let b =
    { wvals = Vec.create (); iovals = Vec.create (); constraints = []; n_constraints = 0 }
  in
  ignore (Vec.push b.iovals Gf.one);
  b

let one = Io 0

let input t v = Io (Vec.push t.iovals v)

let witness t v = Witness (Vec.push t.wvals v)

let value t = function
  | Witness i -> Vec.get t.wvals i
  | Io i -> Vec.get t.iovals i

let lc_var v = [ (v, Gf.one) ]

let lc_const k = if Gf.equal k Gf.zero then [] else [ (one, k) ]

let lc_scale k lc =
  if Gf.equal k Gf.zero then []
  else List.map (fun (v, c) -> (v, Gf.mul k c)) lc

let lc_add a b = a @ b

let lc_value t lc =
  List.fold_left (fun acc (v, c) -> Gf.add acc (Gf.mul c (value t v))) Gf.zero lc

let constrain t a b c =
  let va = lc_value t a and vb = lc_value t b and vc = lc_value t c in
  if not (Gf.equal (Gf.mul va vb) vc) then
    invalid_arg
      (Printf.sprintf "Builder.constrain: unsatisfied constraint %d (%s * %s <> %s)"
         t.n_constraints (Gf.to_string va) (Gf.to_string vb) (Gf.to_string vc));
  t.constraints <- (a, b, c) :: t.constraints;
  t.n_constraints <- t.n_constraints + 1

let num_constraints t = t.n_constraints

let num_witness t = t.wvals.Vec.len

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let finalize t =
  let nw = t.wvals.Vec.len and nio = t.iovals.Vec.len in
  let half_min = next_pow2 (max 1 (max nw nio)) in
  let n = next_pow2 (max (max 2 t.n_constraints) (2 * half_min)) in
  let half = n / 2 in
  let col = function Witness i -> i | Io i -> half + i in
  let entries_of select =
    List.concat
      (List.mapi
         (fun k (a, b, c) ->
           let row = t.n_constraints - 1 - k in
           List.map (fun (v, coeff) -> (row, col v, coeff)) (select (a, b, c)))
         t.constraints)
  in
  let a = Sparse.of_entries ~nrows:n ~ncols:n (entries_of (fun (a, _, _) -> a)) in
  let b = Sparse.of_entries ~nrows:n ~ncols:n (entries_of (fun (_, b, _) -> b)) in
  let c = Sparse.of_entries ~nrows:n ~ncols:n (entries_of (fun (_, _, c) -> c)) in
  let log_size =
    let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
    go 0 n
  in
  let inst =
    R1cs.make ~a ~b ~c ~log_size ~num_constraints:t.n_constraints ~num_witness:nw
      ~num_io:nio
  in
  let pad vec =
    let arr = Array.make half Gf.zero in
    Array.blit (Vec.to_array vec) 0 arr 0 vec.Vec.len;
    arr
  in
  (inst, { R1cs.w = pad t.wvals; io = pad t.iovals })
