(** A small expression language compiling to R1CS — the circuit front end of
    Fig. 2's step (1), so applications do not have to hand-place constraints.

    Programs are statement lists over expressions; named values are either
    public [input]s or secret witnesses. Booleans are field elements
    constrained to [{0,1}]; comparisons take an explicit bit width, like the
    underlying {!Gadgets}. [interpret] is an independent reference semantics
    the tests check the compiled circuits against. *)

type expr =
  | Const of int64
  | Var of string (** a [let]-bound name, an input, or a secret *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr (** Boolean result *)
  | Lt of int * expr * expr (** width, then operands; Boolean result *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | If of expr * expr * expr (** condition must be Boolean *)
  | Let of string * expr * expr

type stmt =
  | Assert_eq of expr * expr (** constrain equality *)
  | Assert_bool of expr
  | Reveal of string * expr (** expose a value as a public output *)

type program = stmt list

type env = {
  inputs : (string * int64) list; (** public *)
  secrets : (string * int64) list;
}

val interpret : env -> expr -> Zk_field.Gf.t
(** Reference semantics (no circuit).
    @raise Invalid_argument on unbound names, non-Boolean conditions, or a
    width that the operands exceed. *)

val interpret_program : env -> program -> (string * Zk_field.Gf.t) list
(** The revealed outputs. @raise Invalid_argument if an assertion fails. *)

val compile :
  env -> program -> R1cs.instance * R1cs.assignment * (string * Zk_field.Gf.t) list
(** Build the circuit: allocates all inputs (in order), runs the statements,
    and returns the instance, a satisfying assignment, and the revealed
    outputs (which become public io after the inputs). Raises like
    {!interpret} on semantic errors; the resulting instance always satisfies
    [R1cs.satisfied]. *)
