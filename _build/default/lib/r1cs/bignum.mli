(** Multi-limb big-integer gadgets (base 2^16 limbs) — the machinery RSA-class
    circuits need: the paper's RSA benchmark "operates on large prime fields,
    typically primes of 2,048 bits" (Sec. VII-B), far beyond one Goldilocks
    element.

    A number is a little-endian array of limb wires, each range-checked to
    16 bits. Products are computed column-wise with witnessed carry
    normalization; modular reduction witnesses the quotient and remainder and
    checks [x = q*m + r] limb-exactly plus [r < m] via a borrow chain. *)

type t = { limbs : Builder.var array }
(** Little-endian, 16-bit limbs, each constrained. *)

val limb_bits : int
(** 16. *)

val of_int64 : Builder.t -> secret:bool -> limbs:int -> int64 -> t
(** Allocate a constant-width number from an unsigned 64-bit value
    (must fit). *)

val to_int64 : Builder.t -> t -> int64
(** Concrete value (must fit 64 bits unsigned); for tests and witnesses. *)

val constant : Builder.t -> limbs:int -> int64 -> t
(** A public compile-time constant. *)

val mul : Builder.t -> t -> t -> t
(** Full product: [n + m] limbs, carries witnessed and range-checked. *)

val add : Builder.t -> t -> t -> t
(** Sum with carry normalization, [max n m + 1] limbs. *)

val assert_equal : Builder.t -> t -> t -> unit
(** Limb-wise equality (widths may differ; excess limbs must be zero). *)

val less_than : Builder.t -> t -> t -> Builder.var
(** Boolean [a < b] via a borrow chain over equal-width operands. *)

val mod_reduce : Builder.t -> t -> modulus:t -> t
(** [x mod m]: witnesses quotient and remainder, checks [x = q*m + r] and
    [r < m]. The quotient gets [length x] limbs. *)

val modexp :
  Builder.t -> base:t -> exponent:int -> modulus:t -> t
(** Square-and-multiply over a public exponent, reducing after every step. *)
