lib/r1cs/memory_check.mli: Builder R1cs Zk_field
