lib/r1cs/gadgets.ml: Array Builder Int64 List Zk_field
