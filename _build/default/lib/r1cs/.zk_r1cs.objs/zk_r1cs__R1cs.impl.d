lib/r1cs/r1cs.ml: Array Printf Sparse Zk_field
