lib/r1cs/builder.mli: R1cs Zk_field
