lib/r1cs/builder.ml: Array List Printf R1cs Sparse Zk_field
