lib/r1cs/gadgets.mli: Builder
