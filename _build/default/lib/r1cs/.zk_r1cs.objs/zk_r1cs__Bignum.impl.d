lib/r1cs/bignum.ml: Array Builder Gadgets Int64 List Stdlib Zk_field
