lib/r1cs/lang.mli: R1cs Zk_field
