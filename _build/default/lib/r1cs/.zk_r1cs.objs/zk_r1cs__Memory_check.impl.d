lib/r1cs/memory_check.ml: Array Builder Gadgets List Zk_field
