lib/r1cs/r1cs.mli: Sparse Zk_field
