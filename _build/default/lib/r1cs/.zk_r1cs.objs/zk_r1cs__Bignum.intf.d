lib/r1cs/bignum.mli: Builder
