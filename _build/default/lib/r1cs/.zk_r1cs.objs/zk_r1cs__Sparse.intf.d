lib/r1cs/sparse.mli: Seq Zk_field
