lib/r1cs/sparse.ml: Array Int List Seq Zk_field
