lib/r1cs/lang.ml: Builder Gadgets Int64 List Printf Zk_field
