module Gf = Zk_field.Gf

type op = Load of int | Store of int * int

let reference ~init ops =
  let mem = Array.copy init in
  let reads =
    List.filter_map
      (fun op ->
        match op with
        | Load a -> Some mem.(a)
        | Store (a, v) ->
          mem.(a) <- v;
          None)
      ops
  in
  (reads, mem)

let bits_for n =
  let rec go b = if 1 lsl b > n then b else go (b + 1) in
  go 1

(* One multiset accumulator per challenge pair. *)
type accs = {
  gamma_w : Builder.var;
  delta_w : Builder.var;
  delta2_w : Builder.var;
  mutable rs : Builder.var;
  mutable ws : Builder.var;
}

let build b ~challenges ~init ops =
  let m = Array.length init in
  if m = 0 then invalid_arg "Memory_check.build: empty memory";
  let t_count = List.length ops in
  let ts_bits = bits_for (t_count + 1) in
  let one_wire = Gadgets.add_lc b (Builder.lc_const Gf.one) in
  let accs =
    Array.map
      (fun (gamma, delta) ->
        let gamma_w = Builder.input b gamma in
        let delta_w = Builder.input b delta in
        let delta2_w = Gadgets.mul b delta_w delta_w in
        { gamma_w; delta_w; delta2_w; rs = one_wire; ws = one_wire })
      challenges
  in
  (* Accumulate one (addr, value, ts) tuple into an accumulator wire:
     acc' = acc * (gamma - addr - delta*value - delta^2*ts). *)
  let accumulate (a : accs) acc ~addr_lc ~value ~ts_lc =
    let dv = Gadgets.mul b a.delta_w value in
    let d2t = Gadgets.mul_lc b (Builder.lc_var a.delta2_w) ts_lc in
    let factor_lc =
      Builder.lc_add (Builder.lc_var a.gamma_w)
        (Builder.lc_scale (Gf.neg Gf.one)
           (Builder.lc_add addr_lc
              (Builder.lc_add (Builder.lc_var dv) (Builder.lc_var d2t))))
    in
    Gadgets.mul_lc b (Builder.lc_var acc) factor_lc
  in
  (* Init and Final multisets: one tuple per cell. *)
  let init_wires = Array.map (fun v -> Builder.input b (Gf.of_int v)) init in
  let init_accs =
    Array.map
      (fun a ->
        Array.to_list init_wires
        |> List.mapi (fun addr w -> (addr, w))
        |> List.fold_left
             (fun acc (addr, w) ->
               accumulate a acc
                 ~addr_lc:(Builder.lc_const (Gf.of_int addr))
                 ~value:w ~ts_lc:(Builder.lc_const Gf.zero))
             one_wire)
      accs
  in
  (* Host-side simulation supplying the witness (value, timestamp) pairs. *)
  let sim_val = Array.map (fun v -> Gf.of_int v) init in
  let sim_ts = Array.make m 0 in
  let reads = ref [] in
  List.iteri
    (fun i op ->
      let ts = i + 1 in
      let addr = match op with Load a | Store (a, _) -> a in
      if addr < 0 || addr >= m then invalid_arg "Memory_check.build: address out of range";
      let addr_w = Builder.witness b (Gf.of_int addr) in
      ignore (Gadgets.bits_of b ~width:(bits_for (m - 1)) addr_w);
      let rval_w = Builder.witness b sim_val.(addr) in
      let rts_w = Builder.witness b (Gf.of_int sim_ts.(addr)) in
      (* Read timestamp strictly precedes this access. *)
      let ts_wire = Gadgets.add_lc b (Builder.lc_const (Gf.of_int ts)) in
      let lt = Gadgets.less_than b ~width:ts_bits rts_w ts_wire in
      Gadgets.assert_equal b (Builder.lc_var lt) (Builder.lc_const Gf.one);
      let wval_w =
        match op with
        | Load _ ->
          reads := rval_w :: !reads;
          rval_w
        | Store (_, v) -> Builder.witness b (Gf.of_int v)
      in
      Array.iter
        (fun a ->
          a.rs <-
            accumulate a a.rs ~addr_lc:(Builder.lc_var addr_w) ~value:rval_w
              ~ts_lc:(Builder.lc_var rts_w);
          a.ws <-
            accumulate a a.ws ~addr_lc:(Builder.lc_var addr_w) ~value:wval_w
              ~ts_lc:(Builder.lc_const (Gf.of_int ts)))
        accs;
      (match op with Store (a, v) -> sim_val.(a) <- Gf.of_int v | Load _ -> ());
      sim_ts.(addr) <- ts)
    ops;
  (* Final multiset: the closing read of every cell. The witnesses and their
     range checks are shared; only the accumulation repeats per
     instantiation. *)
  let final_tuples =
    Array.init m (fun addr ->
        let fval_w = Builder.witness b sim_val.(addr) in
        let fts_w = Builder.witness b (Gf.of_int sim_ts.(addr)) in
        let bound = Gadgets.add_lc b (Builder.lc_const (Gf.of_int (t_count + 1))) in
        let lt = Gadgets.less_than b ~width:ts_bits fts_w bound in
        Gadgets.assert_equal b (Builder.lc_var lt) (Builder.lc_const Gf.one);
        (addr, fval_w, fts_w))
  in
  let final_accs =
    Array.map
      (fun a ->
        Array.fold_left
          (fun acc (addr, fval_w, fts_w) ->
            accumulate a acc
              ~addr_lc:(Builder.lc_const (Gf.of_int addr))
              ~value:fval_w ~ts_lc:(Builder.lc_var fts_w))
          one_wire final_tuples)
      accs
  in
  (* The memory-consistency equation, per instantiation:
     Init * WS = RS * Final. *)
  Array.iteri
    (fun i a ->
      let lhs = Gadgets.mul b init_accs.(i) a.ws in
      let rhs = Gadgets.mul b a.rs final_accs.(i) in
      Gadgets.assert_equal b (Builder.lc_var lhs) (Builder.lc_var rhs))
    accs;
  List.rev !reads

let circuit ?(value_bits = 16) ~challenges ~init ops () =
  ignore value_bits;
  let b = Builder.create () in
  let reads = build b ~challenges ~init ops in
  List.iter
    (fun r ->
      let out = Builder.input b (Builder.value b r) in
      Gadgets.assert_equal b (Builder.lc_var r) (Builder.lc_var out))
    reads;
  Builder.finalize b

let constraints_per_access ~memory =
  (* Address range check + timestamp comparison + per-instantiation tuple
     flattening and accumulation; memory size only enters through the address
     width. *)
  let addr_bits = bits_for (max 1 (memory - 1)) in
  addr_bits + 1 + 20 + (4 * 6)

let multiplexer_constraints_per_access ~memory =
  (* One-hot selector bits + sum-to-one + gated read + conditional write. *)
  (3 * memory) + 2
