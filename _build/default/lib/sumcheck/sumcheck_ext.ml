module Gf = Zk_field.Gf
module Gf2 = Zk_field.Gf2
module Transcript = Zk_hash.Transcript

type proof = { round_polys : Gf2.t array array }

type prover_result = {
  proof : proof;
  challenges : Gf2.t array;
  final_values : Gf2.t array;
  base_mults_equivalent : int;
}

type verifier_result = { point : Gf2.t array; value : Gf2.t }

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Sumcheck_ext: table size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

let absorb_gf2 transcript label (v : Gf2.t array) =
  let flat = Array.concat (Array.to_list (Array.map (fun x -> [| x.Gf2.c0; x.Gf2.c1 |]) v)) in
  Transcript.absorb_gf transcript label flat

let challenge_gf2 transcript label =
  let c0 = Transcript.challenge_gf transcript (label ^ "/0") in
  let c1 = Transcript.challenge_gf transcript (label ^ "/1") in
  { Gf2.c0; c1 }

let prove transcript ~degree ~tables ~comb ~comb_mults ~claim =
  let k = Array.length tables in
  if k = 0 then invalid_arg "Sumcheck_ext.prove: no tables";
  let n = Array.length tables.(0) in
  let num_vars = log2_exact n in
  Transcript.absorb_int transcript "sumcheck-ext/num_vars" num_vars;
  Transcript.absorb_int transcript "sumcheck-ext/degree" degree;
  Transcript.absorb_gf transcript "sumcheck-ext/claim" [| claim |];
  let tables = Array.map (Array.map Gf2.of_base) tables in
  let len = ref n in
  let mults = ref 0 in
  let round_polys = Array.make num_vars [||] in
  let challenges = Array.make num_vars Gf2.zero in
  let vals = Array.make k Gf2.zero in
  let deltas = Array.make k Gf2.zero in
  for round = 0 to num_vars - 1 do
    let half = !len / 2 in
    let g = Array.make (degree + 1) Gf2.zero in
    for b = 0 to half - 1 do
      for j = 0 to k - 1 do
        let lo = tables.(j).(b) and hi = tables.(j).(b + half) in
        vals.(j) <- lo;
        deltas.(j) <- Gf2.sub hi lo
      done;
      for t = 0 to degree do
        if t > 0 then
          for j = 0 to k - 1 do
            vals.(j) <- Gf2.add vals.(j) deltas.(j)
          done;
        g.(t) <- Gf2.add g.(t) (comb vals)
      done;
      (* Cost accounting: in round 0 every operand is still base-field
         (the extension coefficients are zero), so the multiplies are base
         multiplies; once the first extension challenge folds in, each
         extension multiply costs 3 base multiplies (Karatsuba). *)
      let factor = if round = 0 then 1 else 3 in
      mults := !mults + ((degree + 1) * comb_mults * factor)
    done;
    round_polys.(round) <- g;
    absorb_gf2 transcript "sumcheck-ext/round" g;
    let r = challenge_gf2 transcript "sumcheck-ext/challenge" in
    challenges.(round) <- r;
    for j = 0 to k - 1 do
      for b = 0 to half - 1 do
        tables.(j).(b) <-
          Gf2.add tables.(j).(b) (Gf2.mul r (Gf2.sub tables.(j).(b + half) tables.(j).(b)))
      done
    done;
    (* Round-0 folds multiply an extension challenge by a base difference
       (2 base multiplies); later folds are full extension products. *)
    mults := !mults + ((if round = 0 then 2 else 3) * k * half);
    len := half
  done;
  let final_values = Array.map (fun t -> t.(0)) tables in
  {
    proof = { round_polys };
    challenges;
    final_values;
    base_mults_equivalent = !mults;
  }

(* Lagrange evaluation at an extension point, nodes 0..d. *)
let interpolate_eval_ext (ys : Gf2.t array) (r : Gf2.t) =
  let d = Array.length ys - 1 in
  let xs = Array.init (d + 1) (fun i -> Gf2.of_base (Gf.of_int i)) in
  let hit = ref None in
  Array.iteri (fun i x -> if Gf2.equal x r then hit := Some ys.(i)) xs;
  match !hit with
  | Some y -> y
  | None ->
    let num = Array.map (fun x -> Gf2.sub r x) xs in
    let full = Array.fold_left Gf2.mul Gf2.one num in
    let acc = ref Gf2.zero in
    for i = 0 to d do
      let denom = ref num.(i) in
      for j = 0 to d do
        if j <> i then denom := Gf2.mul !denom (Gf2.sub xs.(i) xs.(j))
      done;
      acc := Gf2.add !acc (Gf2.mul ys.(i) (Gf2.mul full (Gf2.inv !denom)))
    done;
    !acc

let verify transcript ~degree ~num_vars ~claim proof =
  if Array.length proof.round_polys <> num_vars then Error "wrong number of rounds"
  else begin
    Transcript.absorb_int transcript "sumcheck-ext/num_vars" num_vars;
    Transcript.absorb_int transcript "sumcheck-ext/degree" degree;
    Transcript.absorb_gf transcript "sumcheck-ext/claim" [| claim |];
    let expected = ref (Gf2.of_base claim) in
    let point = Array.make num_vars Gf2.zero in
    let rec go round =
      if round = num_vars then Ok { point; value = !expected }
      else begin
        let g = proof.round_polys.(round) in
        if Array.length g <> degree + 1 then
          Error (Printf.sprintf "round %d: wrong degree" round)
        else if not (Gf2.equal (Gf2.add g.(0) g.(1)) !expected) then
          Error (Printf.sprintf "round %d: g(0) + g(1) mismatch" round)
        else begin
          absorb_gf2 transcript "sumcheck-ext/round" g;
          let r = challenge_gf2 transcript "sumcheck-ext/challenge" in
          point.(round) <- r;
          expected := interpolate_eval_ext g r;
          go (round + 1)
        end
      end
    in
    go 0
  end

let eval_mle_ext table point =
  let l = log2_exact (Array.length table) in
  if Array.length point <> l then invalid_arg "Sumcheck_ext.eval_mle_ext";
  let cur = ref (Array.map Gf2.of_base table) in
  Array.iter
    (fun r ->
      let half = Array.length !cur / 2 in
      cur :=
        Array.init half (fun b ->
            Gf2.add (!cur).(b) (Gf2.mul r (Gf2.sub (!cur).(b + half) (!cur).(b)))))
    point;
  (!cur).(0)
