lib/sumcheck/grand_product.ml: Array Printf Result Sumcheck Zk_field Zk_hash Zk_poly
