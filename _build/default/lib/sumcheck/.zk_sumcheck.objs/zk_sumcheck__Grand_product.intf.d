lib/sumcheck/grand_product.mli: Sumcheck Zk_field Zk_hash
