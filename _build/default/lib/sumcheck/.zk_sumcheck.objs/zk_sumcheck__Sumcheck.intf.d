lib/sumcheck/sumcheck.mli: Zk_field Zk_hash
