lib/sumcheck/sumcheck.ml: Array Printf Zk_field Zk_hash Zk_poly
