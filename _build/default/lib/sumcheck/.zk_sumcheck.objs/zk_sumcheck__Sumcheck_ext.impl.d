lib/sumcheck/sumcheck_ext.ml: Array Printf Zk_field Zk_hash
