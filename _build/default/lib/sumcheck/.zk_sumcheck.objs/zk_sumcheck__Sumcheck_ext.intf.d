lib/sumcheck/sumcheck_ext.mli: Zk_field Zk_hash
