(** Sumcheck with verifier challenges drawn from GF(p^2).

    The alternative to Sec. VII-A's 3x repetition: one protocol run whose
    per-round soundness error is ~d/p^2 instead of ~d/p, at the price of
    extension-field arithmetic once the first challenge binds (3 base
    multiplications per extension multiplication). The claimed sum and the
    tables live in the base field; the reduced claim and evaluation point are
    extension elements. *)

module Gf = Zk_field.Gf
module Gf2 = Zk_field.Gf2

type proof = { round_polys : Gf2.t array array }

type prover_result = {
  proof : proof;
  challenges : Gf2.t array;
  final_values : Gf2.t array;
  base_mults_equivalent : int;
      (** prover cost in base-field multiplications (3 per extension mult),
          for the repetition-vs-extension ablation *)
}

val prove :
  Zk_hash.Transcript.t ->
  degree:int ->
  tables:Gf.t array array ->
  comb:(Gf2.t array -> Gf2.t) ->
  comb_mults:int ->
  claim:Gf.t ->
  prover_result

type verifier_result = { point : Gf2.t array; value : Gf2.t }

val verify :
  Zk_hash.Transcript.t ->
  degree:int ->
  num_vars:int ->
  claim:Gf.t ->
  proof ->
  (verifier_result, string) result

val eval_mle_ext : Gf.t array -> Gf2.t array -> Gf2.t
(** Evaluate a base-field table's MLE at an extension point (the oracle check
    the caller performs on [final_values]). *)
