(** Reed-Solomon code with blowup 4, implemented with the NTT primitive
    exactly as Sec. V-A describes: the [n]-element message (viewed as
    polynomial coefficients) is zero-extended to [4n] and a [4n]-point NTT
    evaluates it on the group of [4n]-th roots of unity.

    This is the Shockwave substitution the paper applies to Orion to make the
    encoder accelerator-friendly; the 189-query proximity test at this rate
    gives 128-bit security (Sec. VII-A). *)

include Linear_code.S

val encode_with_plan : Zk_field.Gf.t array -> Zk_field.Gf.t array
(** Same as {!encode}; exposed separately for benchmarks that want to reuse
    the cached plan explicitly. *)

val codeword_at : Zk_field.Gf.t array -> int -> Zk_field.Gf.t
(** [codeword_at msg i] evaluates position [i] of the codeword directly in
    [O(n)] (polynomial evaluation at the [i]-th root), without encoding the
    whole message. Used by tests as an independent cross-check. *)
