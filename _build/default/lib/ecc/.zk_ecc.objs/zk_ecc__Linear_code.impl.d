lib/ecc/linear_code.ml: Zk_field
