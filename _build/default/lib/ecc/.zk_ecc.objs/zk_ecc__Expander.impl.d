lib/ecc/expander.ml: Array Int64 Reed_solomon Zk_field Zk_util
