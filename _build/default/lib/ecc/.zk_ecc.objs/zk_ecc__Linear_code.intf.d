lib/ecc/linear_code.mli: Zk_field
