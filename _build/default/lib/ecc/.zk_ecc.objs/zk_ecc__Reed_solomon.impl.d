lib/ecc/reed_solomon.ml: Array Int64 Zk_field Zk_ntt
