lib/ecc/expander.mli: Linear_code
