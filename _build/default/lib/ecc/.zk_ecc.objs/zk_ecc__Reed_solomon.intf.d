lib/ecc/reed_solomon.mli: Linear_code Zk_field
