(** Spielman-style expander-graph linear code (blowup 4), modelled on the
    codes in Orion's original implementation.

    Encoding recursively compresses the message through a sparse random
    bipartite graph, encodes the compressed half, and expands again through a
    second sparse graph. The graph accesses are data-dependent gathers over a
    structure that grows with the message — exactly the behaviour that makes
    these codes memory-bound on an accelerator and motivates the paper's
    switch to Reed-Solomon (Sec. II, Sec. VIII-C). Kept here as the ablation
    baseline.

    The graphs are pseudo-random (seeded deterministically per size), so the
    code is linear and reproducible; we do not prove distance bounds, which
    are irrelevant to the performance ablation. *)

include Linear_code.S

val graph_bytes : int -> int
(** [graph_bytes n] estimates the size of the expander graphs needed to
    encode an [n]-element message (the "several gigabytes" cost cited in
    Sec. II for large proofs). *)

val random_accesses : int -> int
(** Number of data-dependent gather accesses performed while encoding an
    [n]-element message; feeds the ablation's memory-traffic model. *)
