lib/analysis/lint.mli: Diag Nocap_model
