lib/analysis/check.ml: Array Buffer Diag Hashtbl List Nocap_model Option Printf
