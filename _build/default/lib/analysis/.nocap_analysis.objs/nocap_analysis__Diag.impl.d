lib/analysis/diag.ml: Format List Printf
