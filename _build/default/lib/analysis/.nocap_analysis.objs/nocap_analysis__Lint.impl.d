lib/analysis/lint.ml: Array Buffer Diag Hashtbl List Nocap_model Printf String
