lib/analysis/corpus.mli: Check Lint Nocap_model Zk_r1cs
