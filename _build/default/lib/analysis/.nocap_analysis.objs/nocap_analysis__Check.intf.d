lib/analysis/check.mli: Diag Nocap_model
