lib/analysis/corpus.ml: Check Lint List Nocap_model Printf
