(** Structured diagnostics shared by the {!Lint} program linter and the
    {!Check} schedule checker.

    Every finding is anchored to an instruction index so that it can be
    cross-referenced with {!Nocap_model.Vm.exec} failures (which report the
    same index) and with {!Nocap_model.Schedule.schedule} slots. Analyses
    return diagnostics instead of raising: a broken program yields a report
    that names every violation, not just the first. *)

type severity = Error | Warning

type t = {
  severity : severity;
  index : int;  (** instruction index; {!program_level} for whole-program findings *)
  rule : string;  (** stable kebab-case rule name, e.g. ["uninitialized-read"] *)
  message : string;
}

val program_level : int
(** Sentinel index ([-1]) for diagnostics not tied to one instruction. *)

val error : index:int -> rule:string -> string -> t
val warning : index:int -> rule:string -> string -> t

val errors : t list -> t list
val warnings : t list -> t list

val is_clean : t list -> bool
(** No [Error]-severity diagnostics ([Warning]s are advisory: e.g. the SpMV
    compiler's gather shuffles are flagged but valid). *)

val has_rule : string -> t list -> bool
(** Is there a diagnostic with the given rule name? *)

val to_string : t -> string
(** ["error[uninitialized-read] at #3: ..."]. *)

val pp : Format.formatter -> t -> unit
