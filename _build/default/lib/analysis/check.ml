module Isa = Nocap_model.Isa
module Schedule = Nocap_model.Schedule
module Simulator = Nocap_model.Simulator

type report = {
  diags : Diag.t list;
  makespan : int;
  critical_path : int;
  critical_path_indices : int list;
  fu_utilization : (Simulator.resource * float) list;
}

(* Longest register-dependence chain by summed latency, with one witness
   path. Producers are re-derived from Isa.reads/writes in program order. *)
let critical_path config ~vector_len instrs =
  let n = Array.length instrs in
  let cp = Array.make n 0 in
  let pred = Array.make n (-1) in
  let last_writer = Hashtbl.create 32 in
  let best = ref 0 and best_i = ref (-1) in
  for i = 0 to n - 1 do
    let instr = instrs.(i) in
    let chain = ref 0 in
    List.iter
      (fun r ->
        match Hashtbl.find_opt last_writer r with
        | Some j when cp.(j) > !chain ->
          chain := cp.(j);
          pred.(i) <- j
        | _ -> ())
      (Isa.reads instr);
    cp.(i) <- !chain + Schedule.latency config ~vector_len instr;
    (match Isa.writes instr with
    | Some d -> Hashtbl.replace last_writer d i
    | None -> ());
    if cp.(i) > !best then (
      best := cp.(i);
      best_i := i)
  done;
  let rec walk acc i = if i < 0 then acc else walk (i :: acc) pred.(i) in
  (!best, if !best_i < 0 then [] else walk [] !best_i)

let check config ~vector_len program (sched : Schedule.schedule) =
  let instrs = Array.of_list program in
  let slots = Array.of_list sched.Schedule.slots in
  let n = Array.length instrs in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let cp, cp_indices = critical_path config ~vector_len instrs in
  if Array.length slots <> n then begin
    emit
      (Diag.error ~index:Diag.program_level ~rule:"length-mismatch"
         (Printf.sprintf "schedule has %d slots for a %d-instruction program"
            (Array.length slots) n));
    {
      diags = List.rev !diags;
      makespan = sched.Schedule.makespan;
      critical_path = cp;
      critical_path_indices = cp_indices;
      fu_utilization = [];
    }
  end
  else begin
    let occ = Array.make n 0 in
    Array.iteri
      (fun i (s : Schedule.slot) ->
        occ.(i) <- Schedule.occupancy config ~vector_len s.Schedule.instr;
        if s.Schedule.instr <> instrs.(i) then
          emit
            (Diag.error ~index:i ~rule:"instr-mismatch"
               (Printf.sprintf "slot holds %s, program has %s"
                  (Isa.describe s.Schedule.instr)
                  (Isa.describe instrs.(i))));
        if s.Schedule.issue < 0 then
          emit
            (Diag.error ~index:i ~rule:"negative-issue"
               (Printf.sprintf "%s issues at cycle %d"
                  (Isa.describe s.Schedule.instr)
                  s.Schedule.issue));
        let expected_finish =
          s.Schedule.issue + Schedule.latency config ~vector_len s.Schedule.instr
        in
        if s.Schedule.finish <> expected_finish then
          emit
            (Diag.error ~index:i ~rule:"finish-mismatch"
               (Printf.sprintf "%s finishes at %d, issue + latency = %d"
                  (Isa.describe s.Schedule.instr)
                  s.Schedule.finish expected_finish)))
      slots;
    (* RAW hazards against the re-derived dependence graph. *)
    let last_writer = Hashtbl.create 32 in
    Array.iteri
      (fun i (s : Schedule.slot) ->
        List.iter
          (fun r ->
            match Hashtbl.find_opt last_writer r with
            | Some j ->
              let producer : Schedule.slot = slots.(j) in
              if s.Schedule.issue < producer.Schedule.finish then
                emit
                  (Diag.error ~index:i ~rule:"raw-hazard"
                     (Printf.sprintf
                        "%s issues at %d but r%d is produced by instruction %d \
                         only at %d"
                        (Isa.describe s.Schedule.instr)
                        s.Schedule.issue r j producer.Schedule.finish))
            | None -> ())
          (Isa.reads s.Schedule.instr);
        match Isa.writes s.Schedule.instr with
        | Some d -> Hashtbl.replace last_writer d i
        | None -> ())
      slots;
    (* FU structural hazards: sort each FU's slots by issue and verify the
       issue-to-issue spacing respects occupancy. *)
    let by_fu = Hashtbl.create 8 in
    Array.iteri
      (fun i (s : Schedule.slot) ->
        match Isa.which_fu s.Schedule.instr with
        | Some fu ->
          let cur = Option.value (Hashtbl.find_opt by_fu fu) ~default:[] in
          Hashtbl.replace by_fu fu ((i, s) :: cur)
        | None -> ())
      slots;
    let busy_expected = Hashtbl.create 8 in
    Hashtbl.iter
      (fun fu islots ->
        let sorted =
          List.sort
            (fun (_, (a : Schedule.slot)) (_, (b : Schedule.slot)) ->
              compare (a.Schedule.issue, a.Schedule.finish)
                (b.Schedule.issue, b.Schedule.finish))
            islots
        in
        let total = List.fold_left (fun acc (i, _) -> acc + occ.(i)) 0 sorted in
        Hashtbl.replace busy_expected fu total;
        ignore
          (List.fold_left
             (fun prev (i, (s : Schedule.slot)) ->
               (match prev with
               | Some (j, free_at) when s.Schedule.issue < free_at ->
                 emit
                   (Diag.error ~index:i ~rule:"fu-overlap"
                      (Printf.sprintf
                         "%s FU accepts %s at %d while instruction %d occupies \
                          it until %d"
                         (Simulator.resource_name fu)
                         (Isa.describe s.Schedule.instr)
                         s.Schedule.issue j free_at))
               | _ -> ());
               Some (i, s.Schedule.issue + occ.(i)))
             None sorted))
      by_fu;
    (* Recorded fu_busy totals. *)
    let recorded fu =
      Option.value (List.assoc_opt fu sched.Schedule.fu_busy) ~default:0
    in
    Hashtbl.iter
      (fun fu expected ->
        if recorded fu <> expected then
          emit
            (Diag.error ~index:Diag.program_level ~rule:"fu-busy-mismatch"
               (Printf.sprintf "%s FU: fu_busy records %d cycles, slots occupy %d"
                  (Simulator.resource_name fu)
                  (recorded fu) expected)))
      busy_expected;
    List.iter
      (fun (fu, b) ->
        if b <> 0 && not (Hashtbl.mem busy_expected fu) then
          emit
            (Diag.error ~index:Diag.program_level ~rule:"fu-busy-mismatch"
               (Printf.sprintf "%s FU: fu_busy records %d cycles, no slot uses it"
                  (Simulator.resource_name fu)
                  b)))
      sched.Schedule.fu_busy;
    (* Makespan. *)
    let max_finish =
      Array.fold_left (fun acc (s : Schedule.slot) -> max acc s.Schedule.finish) 0 slots
    in
    if sched.Schedule.makespan <> max_finish then
      emit
        (Diag.error ~index:Diag.program_level ~rule:"makespan-mismatch"
           (Printf.sprintf "makespan %d, latest finish %d" sched.Schedule.makespan
              max_finish));
    let fu_utilization =
      Hashtbl.fold
        (fun fu busy acc ->
          let frac =
            if sched.Schedule.makespan <= 0 then 0.0
            else float_of_int busy /. float_of_int sched.Schedule.makespan
          in
          (fu, frac) :: acc)
        busy_expected []
      |> List.sort compare
    in
    let by_index (a : Diag.t) (b : Diag.t) =
      compare (a.Diag.index, a.Diag.rule) (b.Diag.index, b.Diag.rule)
    in
    {
      diags = List.stable_sort by_index !diags;
      makespan = sched.Schedule.makespan;
      critical_path = cp;
      critical_path_indices = cp_indices;
      fu_utilization;
    }
  end

let is_clean r = Diag.is_clean r.diags

let summary r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "makespan %d cycles, critical path %d cycles (slack %d)\n"
       r.makespan r.critical_path (r.makespan - r.critical_path));
  List.iter (fun d -> Buffer.add_string b ("  " ^ Diag.to_string d ^ "\n")) r.diags;
  Buffer.add_string b "  FU utilization:";
  if r.fu_utilization = [] then Buffer.add_string b " (none)"
  else
    List.iter
      (fun (fu, frac) ->
        Buffer.add_string b
          (Printf.sprintf " %s %.1f%%" (Simulator.resource_name fu) (100.0 *. frac)))
      r.fu_utilization;
  Buffer.contents b
