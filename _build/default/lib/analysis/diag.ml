type severity = Error | Warning

type t = {
  severity : severity;
  index : int;
  rule : string;
  message : string;
}

let program_level = -1

let error ~index ~rule message = { severity = Error; index; rule; message }

let warning ~index ~rule message = { severity = Warning; index; rule; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds

let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let is_clean ds = errors ds = []

let has_rule rule ds = List.exists (fun d -> d.rule = rule) ds

let to_string d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  let where =
    if d.index = program_level then "program" else Printf.sprintf "#%d" d.index
  in
  Printf.sprintf "%s[%s] at %s: %s" sev d.rule where d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)
