type t = {
  mutable state : Keccak.digest;
  mutable counter : int; (* challenges squeezed so far *)
  mutable hashes : int;
}

let create domain =
  { state = Keccak.sha3_256_string ("nocap-repro/" ^ domain); counter = 0; hashes = 1 }

let mix t (data : string) =
  t.state <- Keccak.sha3_256_string (t.state ^ data);
  t.hashes <- t.hashes + 1

let absorb_bytes t label data =
  mix t (Printf.sprintf "%s:%d:" label (Bytes.length data) ^ Bytes.to_string data)

let absorb_gf t label elems =
  let n = Array.length elems in
  let buf = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf (8 * i) (Zk_field.Gf.to_int64 elems.(i))
  done;
  absorb_bytes t label buf

let absorb_digest t label d = absorb_bytes t label (Bytes.of_string d)

let absorb_int t label n = absorb_bytes t label (Bytes.of_string (string_of_int n))

let squeeze_block t =
  (* Domain-separate each squeeze by a counter so challenges are independent. *)
  let d = Keccak.sha3_256_string (t.state ^ Printf.sprintf "sq%d" t.counter) in
  t.counter <- t.counter + 1;
  t.hashes <- t.hashes + 1;
  d

let challenge_gf t label =
  mix t ("ch:" ^ label);
  (* Rejection-sample 8-byte chunks until one lands below p: removes the
     2^64 mod p bias (probability of rejection ~ 2^-32 per draw). *)
  let rec go () =
    let d = squeeze_block t in
    let rec scan i =
      if i + 8 > String.length d then go ()
      else
        let x = String.get_int64_le d i in
        if Zk_field.Gf.is_canonical x then x else scan (i + 8)
    in
    scan 0
  in
  go ()

let challenge_gf_vec t label n = Array.init n (fun _ -> challenge_gf t label)

let challenge_indices t label ~bound ~count =
  if bound <= 0 then invalid_arg "Transcript.challenge_indices";
  mix t ("ix:" ^ label);
  Array.init count (fun _ ->
      let d = squeeze_block t in
      let x = String.get_int64_le d 0 in
      Int64.to_int (Int64.unsigned_rem x (Int64.of_int bound)))

let hash_count t = t.hashes
