module Gf = Zk_field.Gf

type params = { gamma : Gf.t; delta : Gf.t }

let instantiations = 4

let params_of_transcript transcript =
  Array.init instantiations (fun _ ->
      let gamma = Transcript.challenge_gf transcript "multiset/gamma" in
      let delta = Transcript.challenge_gf transcript "multiset/delta" in
      { gamma; delta })

type t = { ms_params : params array; acc : Gf.t array }

let empty ps =
  if Array.length ps <> instantiations then invalid_arg "Multiset_hash.empty";
  { ms_params = ps; acc = Array.make instantiations Gf.one }

let add t x =
  {
    t with
    acc =
      Array.mapi (fun i a -> Gf.mul a (Gf.sub t.ms_params.(i).gamma x)) t.acc;
  }

let add_tuple t tuple =
  {
    t with
    acc =
      Array.mapi
        (fun i a ->
          let { gamma; delta } = t.ms_params.(i) in
          (* Horner-flatten the tuple with delta. *)
          let flat =
            Array.fold_right (fun v acc -> Gf.add v (Gf.mul delta acc)) tuple Gf.zero
          in
          Gf.mul a (Gf.sub gamma flat))
        t.acc;
  }

let union a b =
  if a.ms_params != b.ms_params && a.ms_params <> b.ms_params then
    invalid_arg "Multiset_hash.union: different instantiations";
  { a with acc = Array.map2 Gf.mul a.acc b.acc }

let equal a b = Array.for_all2 Gf.equal a.acc b.acc

let digest_of_list ps xs = List.fold_left add (empty ps) xs

let mults_per_element = instantiations
