(** Multiset hashing over Goldilocks-64.

    Spartan's SPARK compiler proves memory consistency of its sparse-matrix
    accesses with an offline memory check whose core is a multiset hash:
    a multiset S is digested as [H_gamma(S) = prod_{s in S} (gamma - s)] for
    a random [gamma], so two different multisets collide only when [gamma]
    hits a root of the difference polynomial (probability ~|S|/p). Over the
    64-bit Goldilocks field that is too weak on its own, which is why the
    paper runs 4 independent gamma instantiations (Sec. VII-A); this module
    implements exactly that. Tuples (address, value, timestamp) are first
    flattened with a per-instance combiner challenge [delta]. *)

type params = { gamma : Zk_field.Gf.t; delta : Zk_field.Gf.t }

val instantiations : int
(** 4, per Sec. VII-A. *)

val params_of_transcript : Transcript.t -> params array
(** Draw the 4 independent (gamma, delta) instantiations. *)

type t
(** A combined multiset digest (one accumulator per instantiation). *)

val empty : params array -> t

val add : t -> Zk_field.Gf.t -> t
(** Add one field element to the multiset. *)

val add_tuple : t -> Zk_field.Gf.t array -> t
(** Add a tuple, flattened as [v_0 + delta v_1 + delta^2 v_2 + ...] per
    instantiation before the [(gamma - .)] factor. *)

val union : t -> t -> t
(** Digest of the multiset union (pointwise product of accumulators). *)

val equal : t -> t -> bool
(** Digest equality — equal for any two orderings of the same multiset. *)

val digest_of_list : params array -> Zk_field.Gf.t list -> t

val mults_per_element : int
(** Field multiplications per added element (one per instantiation): feeds
    the performance model. *)
