lib/hash/transcript.ml: Array Bytes Int64 Keccak Printf String Zk_field
