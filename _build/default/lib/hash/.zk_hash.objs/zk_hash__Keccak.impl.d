lib/hash/keccak.ml: Array Buffer Bytes Char Int64 Printf String Zk_field
