lib/hash/keccak.mli: Zk_field
