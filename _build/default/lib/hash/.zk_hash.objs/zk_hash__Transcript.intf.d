lib/hash/transcript.mli: Keccak Zk_field
