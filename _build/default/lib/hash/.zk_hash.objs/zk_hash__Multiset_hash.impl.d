lib/hash/multiset_hash.ml: Array List Transcript Zk_field
