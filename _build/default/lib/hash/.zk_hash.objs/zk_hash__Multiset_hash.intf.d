lib/hash/multiset_hash.mli: Transcript Zk_field
