(** Fiat-Shamir transcript.

    Makes the interactive Spartan and Orion protocols non-interactive: the
    prover and verifier absorb the same protocol messages and derive verifier
    challenges by hashing the running state, so soundness reduces to SHA3's
    collision/correlation resistance. Both sides must absorb byte-identical
    data in the same order. *)

type t

val create : string -> t
(** [create domain] starts a transcript bound to a domain-separation label. *)

val absorb_bytes : t -> string -> bytes -> unit
(** [absorb_bytes t label data] mixes labelled bytes into the state. *)

val absorb_gf : t -> string -> Zk_field.Gf.t array -> unit
(** Absorb a vector of field elements. *)

val absorb_digest : t -> string -> Keccak.digest -> unit

val absorb_int : t -> string -> int -> unit

val challenge_gf : t -> string -> Zk_field.Gf.t
(** Squeeze one field-element challenge (uniform up to the negligible
    [2^64 mod p] bias removed by rejection). *)

val challenge_gf_vec : t -> string -> int -> Zk_field.Gf.t array

val challenge_indices : t -> string -> bound:int -> count:int -> int array
(** [challenge_indices t label ~bound ~count] squeezes [count] indices in
    [\[0, bound)] — the Orion column-query sampler. Indices may repeat, as in
    the reference implementation. *)

val hash_count : t -> int
(** Number of SHA3 compressions this transcript has performed (instrumentation
    for the performance model). *)
