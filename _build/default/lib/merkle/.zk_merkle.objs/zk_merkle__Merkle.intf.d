lib/merkle/merkle.mli: Zk_field Zk_hash
