lib/merkle/merkle.ml: Array List String Zk_hash
