(** GZKP (ASPLOS'23): Groth16 on an NVIDIA V100 GPU. The paper reports 37.44 s
    at 16M constraints (Table I) and, assuming generous linear scaling from
    the GPU's modular-arithmetic throughput (Sec. IX-B), 513 s for the 550M-
    constraint Auction benchmark. *)

val table1_seconds : float
(** 37.44 s at 16M constraints. *)

val auction_seconds : float
(** 513 s at 550M constraints (Sec. IX-B's linear-scaling estimate). *)

val goldilocks_multiply_add_per_cycle : float
(** ~200: the V100's sustained Goldilocks multiply-add rate, 10x below
    NoCap's (Sec. IX-B). *)

val nocap_multiply_add_per_cycle : float
