(** CPU proving-time models for the 32-core Threadripper 3975WX baseline
    (Sec. VII), calibrated to the paper's measurements and the efficiency
    analysis of Sec. III.

    Spartan+Orion on the CPU costs 5.8875 us/constraint in the optimized
    configuration (94.2 s at 16M constraints, Table IV) and scales linearly;
    the protocol-optimization ablations of Sec. VIII-C are exposed as flags:
    the wide-field configuration is 1.7x slower, the expander code a further
    1.2x, and enabling sumcheck recomputation on the CPU costs 1% (the CPU is
    not memory-bound, which is why the software version leaves it off). *)

type spartan_options = {
  goldilocks : bool; (** narrow 64-bit field (default true) *)
  reed_solomon : bool; (** RS instead of expander codes (default true) *)
  recompute : bool; (** sumcheck recomputation (default false on CPU) *)
}

val default_options : spartan_options

val spartan_orion_seconds :
  ?options:spartan_options -> ?density:float -> n_constraints:float -> unit -> float

val groth16_seconds : n_constraints:float -> float
(** libsnark on the same CPU: 53.99 s at 16M constraints (Table I). *)

val serial_mult_rate_ratio : float
(** Sec. III: serially, the Spartan+Orion CPU code sustains 4.66x fewer
    64-bit multiplies per second than Groth16's. *)

val parallel_speedup_spartan : float
(** 2.7x on 32 cores (Sec. III). *)

val parallel_speedup_groth16 : float
(** 5.0x on 32 cores (Sec. III). *)

val multiplies_ratio : float
(** Spartan+Orion performs 4.94x fewer 64-bit multiplies than Groth16
    (Sec. III). *)
