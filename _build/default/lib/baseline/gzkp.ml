let table1_seconds = 37.44

let auction_seconds = 513.0

let goldilocks_multiply_add_per_cycle = 200.0

let nocap_multiply_add_per_cycle = 2048.0
