(** Performance model of PipeZK (ISCA'21), the state-of-the-art Groth16 ASIC
    the paper compares against, scaled per Sec. VII to NoCap's 14nm node,
    area, frequency and memory bandwidth, and using BLS12-381.

    The defining property (Sec. III): PipeZK accelerates the MSM/NTT pipeline
    by 32x over the CPU, but the MSM-G2 phase stays on the CPU and caps
    end-to-end speedup — at 16M constraints the accelerated part takes 1.43 s
    and the CPU part the remaining 6.59 s of the 8.02 s total. Both parts
    scale linearly with constraint count. *)

val accelerated_seconds : n_constraints:float -> float
(** The part PipeZK's pipelines execute. *)

val cpu_seconds : n_constraints:float -> float
(** The MSM-G2 phase left on the host CPU. *)

val seconds : n_constraints:float -> float
(** End-to-end proving time. *)

val accelerated_speedup_over_cpu : float
(** 32x on the offloaded portion (Sec. III). *)
