(* Sec. III: at 16M constraints, 8.02 s total of which 1.43 s is the
   accelerated portion; the rest is the CPU-bound MSM-G2 phase. *)
let accelerated_per_constraint = 1.43 /. 16.0e6
let cpu_per_constraint = (8.02 -. 1.43) /. 16.0e6

let accelerated_seconds ~n_constraints = accelerated_per_constraint *. n_constraints

let cpu_seconds ~n_constraints = cpu_per_constraint *. n_constraints

let seconds ~n_constraints = accelerated_seconds ~n_constraints +. cpu_seconds ~n_constraints

let accelerated_speedup_over_cpu = 32.0
