let log2 x = log x /. log 2.0

(* Least-squares fits of Table III against (log2 N)^2. *)
let proof_mb ~n = (0.01584 *. (log2 n ** 2.0)) -. 1.13

let verifier_ms ~n = (0.5079 *. (log2 n ** 2.0)) -. 162.0

let spartan_orion_proof_bytes ~n_constraints =
  if n_constraints <= 0.0 then invalid_arg "Proofsize.spartan_orion_proof_bytes";
  proof_mb ~n:n_constraints *. 1024.0 *. 1024.0

let spartan_orion_verifier_seconds ~n_constraints =
  verifier_ms ~n:n_constraints /. 1000.0

let groth16_proof_bytes = 204.8

let groth16_verifier_seconds = 0.010
