(** Proof-size and verifier-time models (Table III).

    Spartan+Orion proofs and verification both grow as O(log^2 N) in the
    constraint count (Sec. III, citing Orion); the coefficients here are a
    least-squares fit to the paper's five benchmark measurements, accurate to
    a few percent across 16M-550M constraints. Groth16's proof is a constant
    0.2 KB verified in ~10 ms. Note that this models the full Orion scheme
    with its recursive proof composition; the non-recursive implementation in
    {!Zk_orion} produces larger proofs (use
    {!Zk_orion.Orion.proof_size_bytes} for those). *)

val spartan_orion_proof_bytes : n_constraints:float -> float

val spartan_orion_verifier_seconds : n_constraints:float -> float

val groth16_proof_bytes : float
(** 0.2 KB. *)

val groth16_verifier_seconds : float
(** 10 ms. *)
