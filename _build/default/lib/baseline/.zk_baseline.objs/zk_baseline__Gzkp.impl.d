lib/baseline/gzkp.ml:
