lib/baseline/cpu_model.ml:
