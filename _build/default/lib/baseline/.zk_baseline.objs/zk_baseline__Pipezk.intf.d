lib/baseline/pipezk.mli:
