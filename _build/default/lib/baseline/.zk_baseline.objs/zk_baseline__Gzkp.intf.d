lib/baseline/gzkp.mli:
