lib/baseline/proofsize.ml:
