lib/baseline/cpu_model.mli:
