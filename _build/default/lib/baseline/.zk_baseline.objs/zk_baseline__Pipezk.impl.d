lib/baseline/pipezk.ml:
