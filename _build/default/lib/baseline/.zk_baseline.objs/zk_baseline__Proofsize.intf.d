lib/baseline/proofsize.mli:
