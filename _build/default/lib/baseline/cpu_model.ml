type spartan_options = { goldilocks : bool; reed_solomon : bool; recompute : bool }

let default_options = { goldilocks = true; reed_solomon = true; recompute = false }

(* 94.2 s / 16M constraints (Table IV) in the optimized configuration. *)
let spartan_base_seconds_per_constraint = 94.2 /. 16.0e6

let spartan_orion_seconds ?(options = default_options) ?(density = 1.0) ~n_constraints () =
  if n_constraints <= 0.0 then invalid_arg "Cpu_model.spartan_orion_seconds";
  let field_factor = if options.goldilocks then 1.0 else 1.7 in
  let code_factor = if options.reed_solomon then 1.0 else 1.2 in
  (* Recomputation trades memory traffic for multiplies; the CPU is not
     memory-bound, so it only hurts (by 1%, Sec. VIII-C). *)
  let recompute_factor = if options.recompute then 1.01 else 1.0 in
  spartan_base_seconds_per_constraint *. n_constraints *. density *. field_factor
  *. code_factor *. recompute_factor

(* 53.99 s / 16M constraints (Table I). *)
let groth16_seconds ~n_constraints = 53.99 /. 16.0e6 *. n_constraints

let serial_mult_rate_ratio = 4.66
let parallel_speedup_spartan = 2.7
let parallel_speedup_groth16 = 5.0
let multiplies_ratio = 4.94
