(** Regeneration of the paper's evaluation tables (paper value vs. model
    output side by side). Each [tableN] prints; the [_data] accessors expose
    the computed rows for tests and EXPERIMENTS.md. *)

val table1 : unit -> unit
(** End-to-end platform comparison at 16M constraints. *)

val table2 : unit -> unit
(** NoCap area breakdown. *)

val table3 : unit -> unit
(** Benchmark characteristics: size, proof size, verifier time. *)

val table4 : unit -> unit
(** Proving times and speedups. *)

val table5 : unit -> unit
(** End-to-end runtimes and speedups vs. PipeZK. *)

type table4_row = {
  name : string;
  nocap_s : float;
  cpu_s : float;
  cpu_speedup : float;
  pipezk_s : float;
  pipezk_speedup : float;
}

val table4_data : unit -> table4_row list * float * float
(** Rows plus (gmean vs CPU, gmean vs PipeZK). *)

type table5_row = {
  t5_name : string;
  t5_prover : float;
  t5_send : float;
  t5_verifier : float;
  t5_total : float;
  t5_vs_pipezk : float;
}

val table5_data : unit -> table5_row list * float
(** Rows plus gmean end-to-end speedup vs. PipeZK. *)
