lib/report/figures.ml: Array List Nocap_model Printf Render Zk_baseline Zk_field Zk_hash Zk_sumcheck Zk_util Zk_workloads Zk_zkdb
