lib/report/render.mli:
