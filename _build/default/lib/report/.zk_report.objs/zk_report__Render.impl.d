lib/report/render.ml: List Printf String
