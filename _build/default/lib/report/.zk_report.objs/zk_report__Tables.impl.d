lib/report/tables.ml: List Nocap_model Printf Render Zk_baseline Zk_perf Zk_util Zk_workloads
