lib/report/tables.mli:
