lib/report/figures.mli:
