(** Plain-text rendering of the evaluation tables and figure data. *)

val section : string -> unit
(** Print a section banner. *)

val table : header:string list -> string list list -> unit
(** Column-aligned table. *)

val seconds : float -> string
(** Human scale: "151.3 ms", "2.6 s", "1.7 h". *)

val ratio : float -> string
(** "586x". *)

val mb : float -> string
val watts : float -> string
val percent : float -> string
