let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c _ -> Printf.printf "%s  " (String.make (List.nth widths c) '-'))
    header;
  print_newline ();
  List.iter print_row rows

let seconds s =
  if s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1f ms" (s *. 1e3)
  else if s < 120.0 then Printf.sprintf "%.2f s" s
  else if s < 7200.0 then Printf.sprintf "%.1f min" (s /. 60.0)
  else Printf.sprintf "%.1f h" (s /. 3600.0)

let ratio r =
  if r >= 100.0 then Printf.sprintf "%.0fx" r
  else if r >= 10.0 then Printf.sprintf "%.1fx" r
  else Printf.sprintf "%.2fx" r

let mb bytes = Printf.sprintf "%.1f MB" (bytes /. (1024.0 *. 1024.0))

let watts w = Printf.sprintf "%.1f W" w

let percent p = Printf.sprintf "%.1f%%" (100.0 *. p)
