module Config = Nocap_model.Config
module Workload = Nocap_model.Workload
module Simulator = Nocap_model.Simulator
module Power = Nocap_model.Power
module Area = Nocap_model.Area
module Benchmarks = Zk_workloads.Benchmarks
module Cpu_model = Zk_baseline.Cpu_model
module Stats = Zk_util.Stats
module Zkdb = Zk_zkdb.Zkdb
module Multichip = Nocap_model.Multichip

let default_run () =
  Simulator.run Config.default (Workload.spartan_orion ~n_constraints:16.0e6 ())

let gmean_seconds config =
  Stats.gmean
    (List.map
       (fun (b : Benchmarks.t) ->
         let wl =
           Workload.spartan_orion ~density:b.Benchmarks.density
             ~n_constraints:b.Benchmarks.r1cs_size ()
         in
         (Simulator.run config wl).Simulator.total_seconds)
       Benchmarks.all)

let fig5 () =
  Render.section "Fig. 5: NoCap power breakdown (16M constraints)";
  let p = Power.of_result (default_run ()) in
  let fu, rf, hbm = Power.fractions p in
  Render.table
    ~header:[ "Component"; "Ours"; "Paper" ]
    [
      [ "Functional units"; Render.percent fu; "13%" ];
      [ "Register file"; Render.percent rf; "44%" ];
      [ "HBM"; Render.percent hbm; "42%" ];
      [ "Total power"; Render.watts (Power.total p); "62 W" ];
    ]

let fig6 () =
  Render.section "Fig. 6: runtime and memory-traffic breakdown across tasks";
  let r = default_run () in
  (* The CPU breakdown from Fig. 6a, for side-by-side comparison. *)
  let cpu_fractions =
    [ (Workload.Sumcheck, 0.70); (Workload.Reed_solomon, 0.19); (Workload.Poly_arith, 0.06);
      (Workload.Merkle_tree, 0.03); (Workload.Spmv, 0.02) ]
  in
  let paper_nocap_time =
    [ (Workload.Sumcheck, 0.735); (Workload.Reed_solomon, 0.09); (Workload.Poly_arith, 0.12);
      (Workload.Merkle_tree, 0.05); (Workload.Spmv, 0.005) ]
  in
  let paper_traffic =
    [ (Workload.Sumcheck, 0.55); (Workload.Poly_arith, 0.25); (Workload.Merkle_tree, 0.09);
      (Workload.Reed_solomon, 0.09); (Workload.Spmv, 0.01) ]
  in
  Render.table
    ~header:
      [ "Task"; "NoCap time"; "(paper)"; "NoCap traffic"; "(paper)"; "CPU time (paper)" ]
    (List.map
       (fun task ->
         [
           Workload.task_name task;
           Render.percent (Simulator.task_fraction r task);
           Render.percent (List.assoc task paper_nocap_time);
           Render.percent (Simulator.traffic_fraction r task);
           Render.percent (List.assoc task paper_traffic);
           Render.percent (List.assoc task cpu_fractions);
         ])
       Workload.all_tasks);
  Printf.printf "compute utilization: %s (paper: 60%%)\n"
    (Render.percent r.Simulator.compute_utilization)

let knobs =
  [
    ("arith", fun f -> Config.scale_fu Config.default `Arith f);
    ("hash", fun f -> Config.scale_fu Config.default `Hash f);
    ("ntt", fun f -> Config.scale_fu Config.default `Ntt f);
    ("hbm-bw", fun f -> Config.scale_hbm Config.default f);
    ("regfile", fun f -> Config.scale_regfile Config.default f);
  ]

let factors = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let fig7_data () =
  let base = gmean_seconds Config.default in
  List.map
    (fun (name, scale) ->
      (name, List.map (fun f -> (f, base /. gmean_seconds (scale f))) factors))
    knobs

let fig7 () =
  Render.section "Fig. 7: parameter sensitivity (gmean performance vs default)";
  let data = fig7_data () in
  Render.table
    ~header:("Scale" :: List.map (fun (n, _) -> n) data)
    (List.mapi
       (fun i f ->
         Printf.sprintf "%.2fx" f
         :: List.map (fun (_, series) -> Printf.sprintf "%.2f" (snd (List.nth series i))) data)
       factors)

(* Design-space sweep: FU throughputs and storage independently, for 1 TB/s
   and 2 TB/s HBM (Fig. 8). *)
let design_points ~hbm_factor =
  let opts = [ 0.25; 0.5; 1.0; 2.0 ] in
  List.concat_map
    (fun arith ->
      List.concat_map
        (fun ntt ->
          List.concat_map
            (fun hash ->
              List.map
                (fun regfile ->
                  let c = Config.scale_fu Config.default `Arith arith in
                  let c = Config.scale_fu c `Ntt ntt in
                  let c = Config.scale_fu c `Hash hash in
                  let c = Config.scale_regfile c regfile in
                  let c = Config.scale_hbm c hbm_factor in
                  (Area.total (Area.of_config c), gmean_seconds c))
                [ 0.5; 1.0; 2.0 ])
            [ 0.5; 1.0; 2.0 ])
        [ 0.5; 1.0; 2.0 ])
    opts

let pareto points =
  (* Keep points not dominated in (area, time), sorted by area. *)
  let sorted = List.sort (fun (a1, _) (a2, _) -> compare a1 a2) points in
  let rec go best acc = function
    | [] -> List.rev acc
    | (a, t) :: rest ->
      if t < best then go t ((a, t) :: acc) rest else go best acc rest
  in
  go infinity [] sorted

let fig8_pareto ~hbm_factor = pareto (design_points ~hbm_factor)

let fig8 () =
  Render.section "Fig. 8: design space (area vs gmean proving time)";
  let show factor =
    let frontier = fig8_pareto ~hbm_factor:factor in
    Printf.printf "HBM %.0f GB/s Pareto frontier (%d points of %d swept):\n"
      (1024.0 *. factor) (List.length frontier)
      (List.length (design_points ~hbm_factor:factor));
    List.iter
      (fun (area, t) -> Printf.printf "  %6.1f mm^2  ->  %s\n" area (Render.seconds t))
      frontier
  in
  show 1.0;
  show 2.0;
  let chosen_area = Area.total (Area.of_config Config.default) in
  Printf.printf "chosen configuration: %.1f mm^2, %s gmean (the frontier flattens beyond it)\n"
    chosen_area
    (Render.seconds (gmean_seconds Config.default))

let ablations () =
  Render.section "Sec. VIII-C: protocol optimization ablations";
  let cpu opts = Cpu_model.spartan_orion_seconds ~options:opts ~n_constraints:16.0e6 () in
  let base_cpu = cpu Cpu_model.default_options in
  let wide = cpu { Cpu_model.default_options with Cpu_model.goldilocks = false } in
  let expander = cpu { Cpu_model.default_options with Cpu_model.reed_solomon = false } in
  let recompute_cpu = cpu { Cpu_model.default_options with Cpu_model.recompute = true } in
  let nocap ?recompute ?code () =
    let wl = Workload.spartan_orion ?recompute ?code ~n_constraints:16.0e6 () in
    (Simulator.run Config.default wl).Simulator.total_seconds
  in
  let base_nocap = nocap () in
  Render.table
    ~header:[ "Optimization"; "Effect"; "Paper" ]
    [
      [ "Goldilocks64 field (CPU)"; Render.ratio (wide /. base_cpu); "1.7x" ];
      [ "Reed-Solomon vs expander (CPU)"; Render.ratio (expander /. base_cpu); "1.2x" ];
      [
        "Sumcheck recomputation (CPU)";
        Printf.sprintf "%+.1f%%" (100.0 *. ((recompute_cpu /. base_cpu) -. 1.0));
        "+1% (left off)";
      ];
      [
        "Sumcheck recomputation (NoCap)";
        Render.ratio (nocap ~recompute:false () /. base_nocap);
        "1.1x";
      ];
      [
        "Reed-Solomon vs expander (NoCap)";
        Render.ratio (nocap ~code:`Expander () /. base_nocap);
        "(memory-bound)";
      ];
    ]

let db_throughput () =
  Render.section "Sec. VIII: real-time verifiable database (1 s latency target)";
  let row platform name =
    let tput ~include_send =
      Zkdb.max_throughput ~platform ~include_send ~latency_budget:1.0
    in
    [
      name;
      Printf.sprintf "%.0f tx/s" (tput ~include_send:false);
      Printf.sprintf "%.0f tx/s" (tput ~include_send:true);
    ]
  in
  Render.table
    ~header:[ "Prover"; "Throughput (no send)"; "Throughput (incl. send)" ]
    [ row Zkdb.Cpu "CPU"; row Zkdb.Nocap "NoCap" ];
  print_endline "paper: 2 tx/s (CPU) vs 1,142 tx/s (NoCap); see EXPERIMENTS.md for accounting"

let applications () =
  Render.section "Sec. I application case studies";
  (* 256 KB photo crop: the paper's three published numbers (>12 min CPU,
     ~1 s NoCap, 0.2 s verification) are mutually consistent with a ~122M
     constraint circuit. *)
  let photo_n = 122.0e6 in
  let cpu = Cpu_model.spartan_orion_seconds ~n_constraints:photo_n () in
  let wl = Workload.spartan_orion ~n_constraints:photo_n () in
  let nocap = (Simulator.run Config.default wl).Simulator.total_seconds in
  let verify = Zk_baseline.Proofsize.spartan_orion_verifier_seconds ~n_constraints:photo_n in
  (* Confidential-DP training: 100 h of proving to under 30 min. *)
  let dp_n = 100.0 *. 3600.0 /. (94.2 /. 16.0e6) in
  let dp_nocap =
    (Simulator.run Config.default (Workload.spartan_orion ~n_constraints:dp_n ()))
      .Simulator.total_seconds
  in
  Render.table
    ~header:[ "Use case"; "CPU"; "NoCap"; "Verify"; "Paper" ]
    [
      [
        "256 KB photo crop";
        Render.seconds cpu;
        Render.seconds nocap;
        Render.seconds verify;
        ">12 min / ~1 s / 0.2 s";
      ];
      [
        "Confidential-DP training";
        Render.seconds (100.0 *. 3600.0);
        Render.seconds dp_nocap;
        "-";
        "100 h -> <30 min";
      ];
    ]

let scaling () =
  Render.section "Sec. X: rack-scale proving (550M-constraint Auction statement)";
  let results = Multichip.sweep ~n_constraints:550.0e6 ~chips:[ 1; 2; 4; 8; 16; 32 ] () in
  Render.table
    ~header:[ "Chips"; "Shard"; "Exchange"; "Aggregate"; "Total"; "Speedup"; "Efficiency" ]
    (List.map
       (fun (r : Multichip.result) ->
         [
           string_of_int r.Multichip.chips;
           Render.seconds r.Multichip.shard_seconds;
           Render.seconds r.Multichip.exchange_seconds;
           Render.seconds r.Multichip.aggregate_seconds;
           Render.seconds r.Multichip.total_seconds;
           Render.ratio r.Multichip.speedup;
           Render.percent r.Multichip.efficiency;
         ])
       results)

let soundness_ablation () =
  Render.section "Soundness amplification: 3x repetition vs GF(p^2) challenges";
  (* Measure both provers on the same degree-3 sumcheck instance. *)
  let rng = Zk_util.Rng.create 4242L in
  let module Gf = Zk_field.Gf in
  let module Gf2 = Zk_field.Gf2 in
  let l = 12 in
  let tables = Array.init 4 (fun _ -> Array.init (1 lsl l) (fun _ -> Gf.random rng)) in
  let comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  let comb_ext v = Gf2.mul v.(0) (Gf2.sub (Gf2.mul v.(1) v.(2)) v.(3)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to (1 lsl l) - 1 do
      acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) tables))
    done;
    !acc
  in
  let base_mults =
    let t = Zk_hash.Transcript.create "abl-base" in
    (Zk_sumcheck.Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables ~comb ~claim)
      .Zk_sumcheck.Sumcheck.stats.Zk_sumcheck.Sumcheck.mults
  in
  let ext =
    let t = Zk_hash.Transcript.create "abl-ext" in
    Zk_sumcheck.Sumcheck_ext.prove t ~degree:3 ~tables ~comb:comb_ext ~comb_mults:2 ~claim
  in
  let reps3 = 3 * base_mults in
  let ext_mults = ext.Zk_sumcheck.Sumcheck_ext.base_mults_equivalent in
  Render.table
    ~header:[ "Scheme"; "Prover mults (base-equivalent)"; "Proof elements / round" ]
    [
      [ "3x repetition (paper)"; string_of_int reps3; "3 x 4 base" ];
      [ "GF(p^2) challenges"; string_of_int ext_mults; "4 extension (= 8 base)" ];
      [
        "ratio";
        Printf.sprintf "%.2fx cheaper" (float_of_int reps3 /. float_of_int ext_mults);
        "1.5x smaller";
      ];
    ];
  print_endline
    "(the paper chose repetition; extension challenges are the standard alternative\n\
    \ and fit the same FUs: each extension mult is 3 base mults on the multiply FU)"
