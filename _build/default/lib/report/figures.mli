(** Regeneration of the paper's evaluation figures (as data series) plus the
    Sec. VIII-C ablations and the application case studies of Sec. I. *)

val fig5 : unit -> unit
(** Power breakdown for a 16M-constraint statement. *)

val fig6 : unit -> unit
(** Runtime breakdown (CPU and NoCap) and NoCap memory-traffic breakdown. *)

val fig7 : unit -> unit
(** Parameter sensitivity: sweep each FU, HBM bandwidth, and register-file
    size across 1/4x..4x; gmean performance relative to default. *)

val fig7_data : unit -> (string * (float * float) list) list
(** For each knob, (scale factor, speedup vs default) series. *)

val fig8 : unit -> unit
(** Design space: (area, performance) scatter for 1 TB/s and 2 TB/s HBM with
    the Pareto frontier marked. *)

val fig8_pareto : hbm_factor:float -> (float * float) list
(** Pareto-optimal (area mm^2, gmean seconds) points for one memory
    bandwidth. *)

val ablations : unit -> unit
(** Sec. VIII-C: Goldilocks64, Reed-Solomon vs expander, sumcheck
    recomputation, on both CPU and NoCap. *)

val db_throughput : unit -> unit
(** The Sec. VIII real-time verifiable database claim. *)

val applications : unit -> unit
(** Sec. I case studies: photo cropping, confidential-DP training. *)

val scaling : unit -> unit
(** Sec. X: rack-scale multi-accelerator proving — the speedup curve of
    sharding one large proof across 1..32 NoCap chips. *)

val soundness_ablation : unit -> unit
(** Extension-field challenges (GF(p^2)) versus the paper's 3x sumcheck
    repetition: prover cost and proof size for the same 128-bit soundness. *)
