module Endtoend = Zk_perf.Endtoend
module Benchmarks = Zk_workloads.Benchmarks
module Proofsize = Zk_baseline.Proofsize
module Area = Nocap_model.Area
module Config = Nocap_model.Config
module Workload = Nocap_model.Workload
module Simulator = Nocap_model.Simulator
module Pipezk = Zk_baseline.Pipezk
module Cpu_model = Zk_baseline.Cpu_model
module Stats = Zk_util.Stats

let f2 = Printf.sprintf "%.2f"

let table1 () =
  Render.section "Table I: end-to-end zk-SNARK / prover-hardware comparison (16M constraints)";
  let n = 16.0e6 in
  let paper =
    [
      (Endtoend.Groth16_cpu, 54.00);
      (Endtoend.Groth16_gpu, 37.45);
      (Endtoend.Groth16_pipezk, 8.03);
      (Endtoend.Spartan_cpu, 95.14);
      (Endtoend.Spartan_nocap, 1.09);
    ]
  in
  let rows =
    List.map
      (fun (platform, paper_total) ->
        let b = Endtoend.run platform ~n_constraints:n () in
        [
          Endtoend.platform_name platform;
          f2 b.Endtoend.prover;
          f2 b.Endtoend.send;
          f2 b.Endtoend.verifier;
          f2 (Endtoend.total b);
          f2 paper_total;
        ])
      paper
  in
  Render.table
    ~header:[ "zkSNARK / Prover"; "Prover [s]"; "Send [s]"; "Verifier [s]"; "Total [s]"; "Paper total [s]" ]
    rows

let table2 () =
  Render.section "Table II: NoCap area breakdown (14nm, mm^2)";
  let b = Area.of_config Config.default in
  let paper =
    [
      1.80; 6.34; 0.96; 0.84; 9.95; 6.01; 0.11; 29.80; 35.92; 45.87;
    ]
  in
  let rows =
    List.map2
      (fun (name, ours) paper -> [ name; f2 ours; f2 paper ])
      (Area.table_rows b) paper
  in
  Render.table ~header:[ "Building block"; "Ours [mm^2]"; "Paper [mm^2]" ] rows

let table3 () =
  Render.section "Table III: benchmark characteristics";
  let rows =
    List.map
      (fun (b : Benchmarks.t) ->
        let n = b.Benchmarks.r1cs_size in
        let proof = Proofsize.spartan_orion_proof_bytes ~n_constraints:n in
        let verify = Proofsize.spartan_orion_verifier_seconds ~n_constraints:n in
        [
          b.Benchmarks.name;
          Printf.sprintf "%.1fM" (n /. 1e6);
          Printf.sprintf "%.1f" (proof /. (1024.0 *. 1024.0));
          Printf.sprintf "%.1f" b.Benchmarks.paper_proof_mb;
          Printf.sprintf "%.1f" (verify *. 1000.0);
          Printf.sprintf "%.1f" b.Benchmarks.paper_verify_ms;
        ])
      Benchmarks.all
  in
  Render.table
    ~header:
      [ "Benchmark"; "R1CS size"; "Proof [MB]"; "(paper)"; "V time [ms]"; "(paper)" ]
    rows

type table4_row = {
  name : string;
  nocap_s : float;
  cpu_s : float;
  cpu_speedup : float;
  pipezk_s : float;
  pipezk_speedup : float;
}

let table4_data () =
  let rows =
    List.map
      (fun (b : Benchmarks.t) ->
        let n = b.Benchmarks.r1cs_size and density = b.Benchmarks.density in
        let wl = Workload.spartan_orion ~density ~n_constraints:n () in
        let nocap_s = (Simulator.run Config.default wl).Simulator.total_seconds in
        let cpu_s = Cpu_model.spartan_orion_seconds ~density ~n_constraints:n () in
        let pipezk_s = Pipezk.seconds ~n_constraints:n in
        {
          name = b.Benchmarks.name;
          nocap_s;
          cpu_s;
          cpu_speedup = cpu_s /. nocap_s;
          pipezk_s;
          pipezk_speedup = pipezk_s /. nocap_s;
        })
      Benchmarks.all
  in
  let gmean f = Stats.gmean (List.map f rows) in
  (rows, gmean (fun r -> r.cpu_speedup), gmean (fun r -> r.pipezk_speedup))

let table4 () =
  Render.section "Table IV: proof generation time and speedups";
  let rows, g_cpu, g_pipezk = table4_data () in
  let paper = [ (622.0, 53.0); (605.0, 51.0); (578.0, 37.0); (571.0, 50.0); (560.0, 25.0) ] in
  Render.table
    ~header:
      [
        "Benchmark"; "NoCap"; "CPU"; "vs CPU"; "(paper)"; "PipeZK"; "vs PipeZK"; "(paper)";
      ]
    (List.map2
       (fun r (p_cpu, p_zk) ->
         [
           r.name;
           Render.seconds r.nocap_s;
           Render.seconds r.cpu_s;
           Render.ratio r.cpu_speedup;
           Render.ratio p_cpu;
           Render.seconds r.pipezk_s;
           Render.ratio r.pipezk_speedup;
           Render.ratio p_zk;
         ])
       rows paper);
  Printf.printf "gmean speedup vs CPU: %s (paper: 586x)   vs PipeZK: %s (paper: 41x)\n"
    (Render.ratio g_cpu) (Render.ratio g_pipezk)

type table5_row = {
  t5_name : string;
  t5_prover : float;
  t5_send : float;
  t5_verifier : float;
  t5_total : float;
  t5_vs_pipezk : float;
}

let table5_data () =
  let rows =
    List.map
      (fun (b : Benchmarks.t) ->
        let ours = Endtoend.benchmark_breakdown Endtoend.Spartan_nocap b in
        let pipezk = Endtoend.benchmark_breakdown Endtoend.Groth16_pipezk b in
        {
          t5_name = b.Benchmarks.name;
          t5_prover = ours.Endtoend.prover;
          t5_send = ours.Endtoend.send;
          t5_verifier = ours.Endtoend.verifier;
          t5_total = Endtoend.total ours;
          t5_vs_pipezk = Endtoend.speedup pipezk ours;
        })
      Benchmarks.all
  in
  (rows, Stats.gmean (List.map (fun r -> r.t5_vs_pipezk) rows))

let table5 () =
  Render.section "Table V: end-to-end runtime and speedup vs PipeZK";
  let rows, g = table5_data () in
  let paper = [ 7.4; 12.1; 19.6; 34.1; 22.4 ] in
  Render.table
    ~header:[ "Benchmark"; "Prover"; "Send"; "Verifier"; "Total"; "vs PipeZK"; "(paper)" ]
    (List.map2
       (fun r p ->
         [
           r.t5_name;
           f2 r.t5_prover;
           f2 r.t5_send;
           f2 r.t5_verifier;
           f2 r.t5_total;
           Render.ratio r.t5_vs_pipezk;
           Render.ratio p;
         ])
       rows paper);
  Printf.printf "gmean end-to-end speedup vs PipeZK: %s (paper: 16.8x)\n" (Render.ratio g)
