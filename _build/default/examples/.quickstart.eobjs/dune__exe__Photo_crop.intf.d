examples/photo_crop.mli:
