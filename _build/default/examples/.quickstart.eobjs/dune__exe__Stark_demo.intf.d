examples/stark_demo.mli:
