examples/auction_demo.mli:
