examples/ml_inference.ml: Array Builder Gadgets Gf Hw_config Nocap_repro Printf R1cs Rng Simulator Spartan String Unix Workload Zk_report
