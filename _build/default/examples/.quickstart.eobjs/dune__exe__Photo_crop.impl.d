examples/photo_crop.ml: Array Builder Cpu_model Gadgets Gf Hw_config List Nocap_repro Printf Proofsize R1cs Rng Simulator Spartan Unix Workload Zk_report
