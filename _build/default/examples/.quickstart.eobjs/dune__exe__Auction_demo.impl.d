examples/auction_demo.ml: Array Auction_circuit Benchmarks Cpu_model Gf Hw_config Nocap_repro Printf R1cs Simulator Spartan Unix Workload Zk_report
