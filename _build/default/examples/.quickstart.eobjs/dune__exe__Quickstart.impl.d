examples/quickstart.ml: Array Builder Gadgets Gf Nocap_repro Printf R1cs Spartan
