examples/verifiable_db.mli:
