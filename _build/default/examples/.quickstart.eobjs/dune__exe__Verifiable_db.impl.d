examples/verifiable_db.ml: Array Litmus_circuit Nocap_repro Printf R1cs Rng String Unix Zkdb
