examples/stark_demo.ml: Array Fri Gf Nocap_repro Printf Rng Stark Transcript Unix
