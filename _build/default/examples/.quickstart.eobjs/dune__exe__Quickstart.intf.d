examples/quickstart.mli:
