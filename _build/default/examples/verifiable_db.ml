(* Real-time verifiable database (Sec. I / Sec. VIII): a server executes
   YCSB-style transactions and hands every client a proof that each batch
   moved the public table state forward correctly — the Litmus use case whose
   latency NoCap makes practical.

   Run with: dune exec examples/verifiable_db.exe *)

open Nocap_repro

let () =
  let rows = 8 in
  let db = Zkdb.create ~rows ~seed:31L in
  Printf.printf "verifiable KV store with %d rows; initial state:\n  %s\n" rows
    (String.concat " " (Array.to_list (Array.map string_of_int (Zkdb.state db))));
  let rng = Rng.create 32L in
  for batch = 1 to 3 do
    let txs = Litmus_circuit.random_transactions rng ~rows ~count:4 in
    let t0 = Unix.gettimeofday () in
    let receipt = Zkdb.prove_batch db txs in
    let elapsed = Unix.gettimeofday () -. t0 in
    let ok = Zkdb.verify_batch receipt in
    Printf.printf
      "batch %d: 4 txs -> %d constraints, proved in %.2f s, verified: %s; state now %s\n%!"
      batch receipt.Zkdb.instance.R1cs.num_constraints elapsed
      (if ok then "OK" else "FAILED")
      (String.concat " " (Array.to_list (Array.map string_of_int (Zkdb.state db))))
  done;

  (* The headline: throughput at a 1-second latency target. *)
  print_newline ();
  let show platform name =
    Printf.printf
      "%-6s at 1 s latency: %5.0f tx/s (prove+verify), %5.0f tx/s (incl. proof transfer)\n"
      name
      (Zkdb.max_throughput ~platform ~include_send:false ~latency_budget:1.0)
      (Zkdb.max_throughput ~platform ~include_send:true ~latency_budget:1.0)
  in
  show Zkdb.Cpu "CPU";
  show Zkdb.Nocap "NoCap";
  print_endline "(paper: 2 tx/s on the CPU vs 1,142 tx/s on NoCap)"
