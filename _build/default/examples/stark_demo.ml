(* STARK generality demo (Sec. IV-E): the same primitives NoCap accelerates
   for Spartan+Orion — NTTs, SHA3 Merkle trees, vector arithmetic — also run
   a complete zkSTARK. Here: proving correct execution of a Fibonacci-style
   computation with a transparent, post-quantum, logarithmic-size proof.

   Run with: dune exec examples/stark_demo.exe *)

open Nocap_repro

let () =
  let n = 1024 in
  let a0 = Gf.of_int 1 and a1 = Gf.of_int 1 in
  Printf.printf "proving a %d-step Fibonacci execution trace...\n%!" n;
  let t0 = Unix.gettimeofday () in
  let proof, last = Stark.prove ~n ~a0 ~a1 in
  Printf.printf "claimed final value: %s\n" (Gf.to_string last);
  Printf.printf "proved in %.2f s; proof is %d bytes (trace itself is %d bytes)\n%!"
    (Unix.gettimeofday () -. t0)
    (Stark.proof_size_bytes proof)
    (8 * n);
  (match Stark.verify ~n ~a0 ~a1 ~claimed_last:last proof with
  | Ok () -> print_endline "verified: the whole execution is correct"
  | Error e -> failwith e);
  (* A prover lying about the result is caught. *)
  (match Stark.verify ~n ~a0 ~a1 ~claimed_last:(Gf.add last Gf.one) proof with
  | Ok () -> failwith "BUG: accepted a false execution claim"
  | Error _ -> print_endline "a false final value is rejected");
  (* The FRI engine underneath also works standalone as a low-degree test. *)
  let rng = Rng.create 7L in
  let coeffs = Array.init 256 (fun _ -> Gf.random rng) in
  let t = Transcript.create "demo" in
  let fri_proof = Fri.prove Fri.default_params t coeffs in
  let v = Transcript.create "demo" in
  match Fri.verify Fri.default_params v ~degree_bound:256 fri_proof with
  | Ok () ->
    Printf.printf "standalone FRI low-degree test: OK (%d byte proof)\n"
      (Fri.proof_size_bytes fri_proof)
  | Error e -> failwith e
