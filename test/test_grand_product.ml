(* The grand-product argument: completeness, the reduced-claim contract,
   rejection of forged products, and end-to-end use against an Orion
   commitment (the SPARK-style composition). *)

module Gf = Zk_field.Gf
module Gp = Zk_sumcheck.Grand_product
module Sumcheck = Zk_sumcheck.Sumcheck
module Mle = Zk_poly.Mle
module Orion = Zk_orion.Orion
module Transcript = Zk_hash.Transcript
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let random_vec rng n = Array.init n (fun _ -> Gf.add Gf.one (Gf.random rng))

let test_completeness () =
  List.iter
    (fun l ->
      let rng = Rng.create (Int64.of_int (900 + l)) in
      let v = random_vec rng (1 lsl l) in
      let expected = Array.fold_left Gf.mul Gf.one v in
      let pt = Transcript.create "gp-test" in
      let product, proof, claim = Gp.prove pt v in
      Alcotest.check gf (Printf.sprintf "product l=%d" l) expected product;
      let vt = Transcript.create "gp-test" in
      match Gp.verify vt ~num_vars:l ~product proof with
      | Error e -> Alcotest.failf "l=%d: %s" l (Zk_pcs.Verify_error.to_string e)
      | Ok rc ->
        (* The verifier-derived claim matches the prover's... *)
        Alcotest.check gf "claim value" claim.Gp.value rc.Gp.value;
        Array.iteri
          (fun i x -> Alcotest.check gf "claim point" x rc.Gp.point.(i))
          claim.Gp.point;
        (* ...and really is the input vector's MLE at that point. *)
        Alcotest.check gf "claim correct" (Mle.eval v rc.Gp.point) rc.Gp.value)
    [ 0; 1; 2; 4; 7; 10 ]

let test_forged_product_rejected () =
  let rng = Rng.create 910L in
  let l = 6 in
  let v = random_vec rng (1 lsl l) in
  let pt = Transcript.create "gp-test" in
  let product, proof, _ = Gp.prove pt v in
  let vt = Transcript.create "gp-test" in
  match Gp.verify vt ~num_vars:l ~product:(Gf.add product Gf.one) proof with
  | Error _ -> ()
  | Ok rc ->
    (* If the rounds happen to pass, the final oracle check must not. *)
    Alcotest.(check bool) "oracle check fails" false
      (Gf.equal (Mle.eval v rc.Gp.point) rc.Gp.value)

let test_tampered_halves_rejected () =
  let rng = Rng.create 911L in
  let l = 5 in
  let v = random_vec rng (1 lsl l) in
  let pt = Transcript.create "gp-test" in
  let product, proof, _ = Gp.prove pt v in
  let p0, p1 = proof.Gp.layer_claims.(2) in
  proof.Gp.layer_claims.(2) <- (Gf.add p0 Gf.one, p1);
  let vt = Transcript.create "gp-test" in
  match Gp.verify vt ~num_vars:l ~product proof with
  | Error _ -> ()
  | Ok rc ->
    Alcotest.(check bool) "oracle check fails" false
      (Gf.equal (Mle.eval v rc.Gp.point) rc.Gp.value)

let test_with_orion_commitment () =
  (* The SPARK composition: the vector is committed, the grand product is
     proven, and the reduced claim is discharged with an Orion opening. *)
  let rng = Rng.create 912L in
  let l = 8 in
  let v = random_vec rng (1 lsl l) in
  let params = { Orion.default_params with Orion.rows = 8 } in
  let committed, cm = Orion.commit params rng v in
  let pt = Transcript.create "gp-orion" in
  Orion.absorb_commitment pt cm;
  let product, gp_proof, claim = Gp.prove pt v in
  let value, opening = Orion.prove_eval params committed pt claim.Gp.point in
  Alcotest.check gf "opening equals reduced claim" claim.Gp.value value;
  (* Verifier side. *)
  let vt = Transcript.create "gp-orion" in
  Orion.absorb_commitment vt cm;
  (match Gp.verify vt ~num_vars:l ~product gp_proof with
  | Error e -> Alcotest.failf "gp: %s" (Zk_pcs.Verify_error.to_string e)
  | Ok rc -> (
    match Orion.verify_eval params cm vt rc.Gp.point rc.Gp.value opening with
    | Ok () -> ()
    | Error e -> Alcotest.failf "opening: %s" (Zk_pcs.Verify_error.to_string e)))

let prop_roundtrip =
  QCheck.Test.make ~count:20 ~name:"grand product roundtrip"
    QCheck.(pair (int_range 1 8) small_nat)
    (fun (l, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 131) + l)) in
      let v = random_vec rng (1 lsl l) in
      let pt = Transcript.create "gp-prop" in
      let product, proof, _ = Gp.prove pt v in
      let vt = Transcript.create "gp-prop" in
      match Gp.verify vt ~num_vars:l ~product proof with
      | Error _ -> false
      | Ok rc -> Gf.equal (Mle.eval v rc.Gp.point) rc.Gp.value)

let suite =
  [
    Alcotest.test_case "completeness" `Quick test_completeness;
    Alcotest.test_case "forged product rejected" `Quick test_forged_product_rejected;
    Alcotest.test_case "tampered halves rejected" `Quick test_tampered_halves_rejected;
    Alcotest.test_case "with Orion commitment" `Quick test_with_orion_commitment;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
