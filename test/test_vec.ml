(* Tests for the unboxed vector layer (lib/vec) and every hot path threaded
   through it: each Fv kernel against its Gf.t array oracle, the flat NTT
   against Gf_ntt, flat Keccak/Merkle/RS/expander/sumcheck/Orion paths
   against their boxed counterparts, arena semantics, and an allocation
   regression on the Fv loops. *)

module Fv = Nocap_vec.Fv
module Arena = Nocap_vec.Arena
module Gf = Zk_field.Gf
module Rng = Zk_util.Rng
module Ntt = Zk_ntt.Ntt
module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Merkle = Zk_merkle.Merkle
module Mle = Zk_poly.Mle
module Rs = Zk_ecc.Reed_solomon
module Expander = Zk_ecc.Expander
module Sumcheck = Zk_sumcheck.Sumcheck
module Orion = Zk_orion.Orion
module Pool = Nocap_parallel.Pool

let gf_testable = Alcotest.testable Gf.pp Gf.equal

let gf_array_eq = Alcotest.(check (array gf_testable))

(* Random Gf arrays of awkward sizes: always includes 0, 1, and odd
   lengths via the size generator. *)
let arb_gf_array =
  let gen =
    QCheck.Gen.(
      let* n = oneof [ return 0; return 1; int_bound 65 ] in
      let* seed = int in
      return
        (Array.init n (fun i ->
             Gf.random (Rng.create (Int64.of_int ((seed * 4099) + i))))))
  in
  QCheck.make ~print:(fun a -> Printf.sprintf "<%d elems>" (Array.length a)) gen

let arb_two_arrays =
  let gen =
    QCheck.Gen.(
      let* n = oneof [ return 0; return 1; int_bound 65 ] in
      let* seed = int in
      let mk tag =
        Array.init n (fun i ->
            Gf.random (Rng.create (Int64.of_int ((seed * 8191) + (tag * 131) + i))))
      in
      return (mk 1, mk 2))
  in
  QCheck.make ~print:(fun (a, _) -> Printf.sprintf "<2 x %d elems>" (Array.length a)) gen

(* --- Fv primitives vs. array oracles ------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Fv.of_array/to_array roundtrip" arb_gf_array (fun a ->
      let v = Fv.of_array a in
      Fv.length v = Array.length a
      && Fv.to_array v = a
      && Fv.equal v (Fv.copy v)
      && Array.for_all2 Gf.equal (Fv.to_array v) a)

let prop_elementwise =
  QCheck.Test.make ~count:200 ~name:"Fv add/sub/mul/scale/axpy/map vs array oracle"
    arb_two_arrays (fun (a, b) ->
      let n = Array.length a in
      let va = Fv.of_array a and vb = Fv.of_array b in
      let dst = Fv.create n in
      let c = Gf.of_int 0x5eed in
      let check oracle =
        Array.for_all2 Gf.equal (Fv.to_array dst) (Array.init n oracle)
      in
      Fv.add_into ~dst va vb;
      let ok_add = check (fun i -> Gf.add a.(i) b.(i)) in
      Fv.sub_into ~dst va vb;
      let ok_sub = check (fun i -> Gf.sub a.(i) b.(i)) in
      Fv.mul_into ~dst va vb;
      let ok_mul = check (fun i -> Gf.mul a.(i) b.(i)) in
      Fv.scale_into ~dst va c;
      let ok_scale = check (fun i -> Gf.mul c a.(i)) in
      Fv.blit ~src:vb ~src_pos:0 ~dst ~dst_pos:0 ~len:n;
      Fv.axpy_into ~dst c va;
      let ok_axpy = check (fun i -> Gf.add b.(i) (Gf.mul c a.(i))) in
      Fv.map_into ~dst (fun x -> Gf.square x) va;
      let ok_map = check (fun i -> Gf.square a.(i)) in
      ok_add && ok_sub && ok_mul && ok_scale && ok_axpy && ok_map)

let prop_fold_sum =
  QCheck.Test.make ~count:200 ~name:"Fv.fold/sum vs array oracle" arb_gf_array (fun a ->
      let v = Fv.of_array a in
      let expected = Array.fold_left Gf.add Gf.zero a in
      Gf.equal (Fv.sum v) expected && Gf.equal (Fv.fold Gf.add Gf.zero v) expected)

let prop_views =
  QCheck.Test.make ~count:200 ~name:"Fv.sub_view shares storage; blit windows"
    arb_gf_array (fun a ->
      let n = Array.length a in
      QCheck.assume (n >= 2);
      let v = Fv.of_array a in
      let pos = n / 3 and len = n / 2 in
      let len = min len (n - pos) in
      let view = Fv.sub_view v ~pos ~len in
      (* A write through the view is a write to the parent. *)
      (len = 0
      ||
      (Fv.set view 0 (Gf.of_int 77);
       Gf.equal (Fv.get v pos) (Gf.of_int 77)))
      &&
      (* read_array/write_array are exact inverses on a window. *)
      let out = Array.make len Gf.zero in
      Fv.read_array v ~src_pos:pos out ~dst_pos:0 ~len;
      Array.for_all2 Gf.equal out (Array.init len (fun i -> Fv.get v (pos + i))))

let test_bounds () =
  let v = Fv.create 4 in
  (try
     ignore (Fv.get v 4);
     Alcotest.fail "out-of-bounds get accepted"
   with Invalid_argument _ -> ());
  (try
     Fv.add_into ~dst:v (Fv.create 3) (Fv.create 3);
     Alcotest.fail "length mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fv.sub_view v ~pos:2 ~len:3);
     Alcotest.fail "oversized view accepted"
   with Invalid_argument _ -> ())

(* --- arena semantics ----------------------------------------------------- *)

let test_arena () =
  Arena.reset ();
  Arena.with_frame (fun () ->
      let a = Arena.alloc_zero 100 in
      let b = Arena.alloc_zero 50 in
      Alcotest.(check int) "watermark" 150 (Arena.used ());
      (* Disjoint views: writes to one never show in the other. *)
      Fv.fill a Gf.one;
      Alcotest.check gf_testable "b untouched" Gf.zero (Fv.get b 0);
      Fv.fill b Gf.two;
      Alcotest.check gf_testable "a untouched" Gf.one (Fv.get a 99);
      Arena.with_frame (fun () ->
          let c = Arena.alloc_zero 10 in
          Fv.fill c (Gf.of_int 3);
          Alcotest.(check int) "inner watermark" 160 (Arena.used ()));
      Alcotest.(check int) "inner frame reclaimed" 150 (Arena.used ());
      (* Growth inside a frame keeps old views valid. *)
      let big = Arena.alloc_zero (Arena.capacity () + 1) in
      Fv.fill big (Gf.of_int 9);
      Alcotest.check gf_testable "a survives growth" Gf.one (Fv.get a 0);
      Alcotest.check gf_testable "b survives growth" Gf.two (Fv.get b 49));
  (* Exception safety: a raising frame still restores the watermark. *)
  let before = Arena.used () in
  (try
     Arena.with_frame (fun () ->
         ignore (Arena.alloc 32);
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "watermark restored on raise" before (Arena.used ())

(* --- flat NTT vs Gf_ntt oracle ------------------------------------------- *)

let test_ntt_equiv () =
  let rng = Rng.create 7L in
  List.iter
    (fun log_n ->
      let n = 1 lsl log_n in
      let input = Array.init n (fun _ -> Gf.random rng) in
      let plan = Ntt.Gf_ntt.plan n in
      let plan_fv = Ntt.Gf_fv.plan n in
      let expected = Ntt.Gf_ntt.forward_copy plan input in
      let v = Fv.of_array input in
      Ntt.Gf_fv.forward plan_fv v;
      gf_array_eq (Printf.sprintf "forward n=%d" n) expected (Fv.to_array v);
      Ntt.Gf_fv.inverse plan_fv v;
      gf_array_eq (Printf.sprintf "inverse n=%d" n) input (Fv.to_array v);
      let fwd = Ntt.Gf_fv.forward_copy plan_fv (Fv.of_array input) in
      gf_array_eq (Printf.sprintf "forward_copy n=%d" n) expected (Fv.to_array fwd))
    [ 0; 1; 2; 5; 8; 10 ]

let test_ntt_rows_flat () =
  let rng = Rng.create 8L in
  let rows = 5 and n = 64 in
  let flat_arr = Array.init (rows * n) (fun _ -> Gf.random rng) in
  let plan = Ntt.Gf_ntt.plan n in
  let expected =
    Array.init rows (fun r ->
        Ntt.Gf_ntt.forward_copy plan (Array.sub flat_arr (r * n) n))
  in
  let flat = Fv.of_array flat_arr in
  Ntt.Gf_fv.forward_rows_flat (Ntt.Gf_fv.plan n) ~rows flat;
  Array.iteri
    (fun r row ->
      gf_array_eq (Printf.sprintf "row %d" r) row (Fv.to_array (Fv.sub_view flat ~pos:(r * n) ~len:n)))
    expected

let test_four_step () =
  let rng = Rng.create 9L in
  List.iter
    (fun (rows, cols) ->
      let a = Array.init (rows * cols) (fun _ -> Gf.random rng) in
      let expected = Ntt.Gf_ntt.four_step_forward ~rows ~cols a in
      let got = Ntt.Gf_fv.four_step_forward ~rows ~cols (Fv.of_array a) in
      gf_array_eq (Printf.sprintf "four-step %dx%d" rows cols) expected (Fv.to_array got);
      (* and both equal the direct flat transform *)
      let direct = Ntt.Gf_ntt.forward_copy (Ntt.Gf_ntt.plan (rows * cols)) a in
      gf_array_eq (Printf.sprintf "four-step = direct %dx%d" rows cols) direct expected)
    [ (2, 2); (4, 8); (16, 16); (8, 64) ]

(* --- flat keccak / merkle ------------------------------------------------ *)

let test_hash_fv () =
  let rng = Rng.create 10L in
  (* Sizes straddle the 17-element rate: 0, partial, exactly one block,
     one block + 1, several blocks. *)
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Gf.random rng) in
      Alcotest.(check string)
        (Printf.sprintf "hash_fv n=%d" n)
        (Keccak.to_hex (Keccak.hash_gf a))
        (Keccak.to_hex (Keccak.hash_fv (Fv.of_array a))))
    [ 0; 1; 5; 16; 17; 18; 34; 100 ]

let test_hash2_concat_free () =
  let d1 = Keccak.sha3_256_string "left" and d2 = Keccak.sha3_256_string "right" in
  Alcotest.(check string) "hash2 = sha3(a||b)"
    (Keccak.to_hex (Keccak.sha3_256_string (d1 ^ d2)))
    (Keccak.to_hex (Keccak.hash2 d1 d2))

let test_hash_gf_packed_oracle () =
  (* hash_gf absorbs elements lane-aligned; the oracle packs the same
     elements into bytes and hashes those. *)
  let rng = Rng.create 11L in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Gf.random rng) in
      let buf = Bytes.create (8 * n) in
      Array.iteri (fun i x -> Bytes.set_int64_le buf (8 * i) (Gf.to_int64 x)) a;
      Alcotest.(check string)
        (Printf.sprintf "hash_gf = sha3(packed) n=%d" n)
        (Keccak.to_hex (Keccak.sha3_256 buf))
        (Keccak.to_hex (Keccak.hash_gf a)))
    [ 0; 3; 17; 40 ]

let test_leaves_of_matrix () =
  let rng = Rng.create 12L in
  let rows = 7 and cols = 19 in
  let flat = Array.init (rows * cols) (fun _ -> Gf.random rng) in
  let gathered =
    Array.init cols (fun j -> Array.init rows (fun r -> flat.((r * cols) + j)))
  in
  let expected = Merkle.leaves_of_columns gathered in
  let got = Merkle.leaves_of_matrix ~rows ~cols (Fv.of_array flat) in
  Alcotest.(check (array string)) "leaves" expected got;
  Alcotest.(check string) "same root"
    (Keccak.to_hex (Merkle.root (Merkle.build expected)))
    (Keccak.to_hex (Merkle.root (Merkle.build got)))

(* --- flat encoders vs boxed oracles -------------------------------------- *)

let encode_rows_oracle (module Code : Zk_ecc.Linear_code.S) rows cols seed =
  let rng = Rng.create seed in
  let msgs = Array.init rows (fun _ -> Array.init cols (fun _ -> Gf.random rng)) in
  let flat = Fv.create (rows * cols) in
  Array.iteri (fun r row -> Fv.write_array row ~src_pos:0 flat ~dst_pos:(r * cols) ~len:cols) msgs;
  let expected = Code.encode_batch msgs in
  let got = Code.encode_rows_fv ~rows ~cols flat in
  Alcotest.(check int)
    (Printf.sprintf "%s flat length" Code.name)
    (rows * Code.blowup * cols)
    (Fv.length got);
  Array.iteri
    (fun r row ->
      gf_array_eq
        (Printf.sprintf "%s row %d (%dx%d)" Code.name r rows cols)
        row
        (Fv.to_array (Fv.sub_view got ~pos:(r * Code.blowup * cols) ~len:(Code.blowup * cols))))
    expected

let test_rs_rows_fv () =
  List.iter
    (fun (rows, cols) -> encode_rows_oracle (module Rs) rows cols 13L)
    [ (0, 8); (1, 1); (3, 16); (8, 64) ]

let test_expander_rows_fv () =
  (* cols > base_size exercises the recursive graph path. *)
  List.iter
    (fun (rows, cols) -> encode_rows_oracle (module Expander) rows cols 14L)
    [ (1, 16); (2, 32); (3, 64); (2, 256) ]

(* --- sumcheck: unboxed prover vs boxed oracle ---------------------------- *)

let test_sumcheck_prove_equiv () =
  let rng = Rng.create 15L in
  let n = 1 lsl 8 in
  let tables = Array.init 3 (fun _ -> Array.init n (fun _ -> Gf.random rng)) in
  let comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(0)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to n - 1 do
      acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) tables))
    done;
    !acc
  in
  let run prover =
    let t = Transcript.create "test-vec-sumcheck" in
    prover t ~degree:3 ~tables ~comb ~claim
  in
  let a = run (Sumcheck.prove_arrays ?engine:None ~comb_mults:2)
  and b = run (Sumcheck.prove ?engine:None ~comb_mults:2) in
  Array.iteri
    (fun i g -> gf_array_eq (Printf.sprintf "round %d" i) g b.Sumcheck.proof.Sumcheck.round_polys.(i))
    a.Sumcheck.proof.Sumcheck.round_polys;
  gf_array_eq "challenges" a.Sumcheck.challenges b.Sumcheck.challenges;
  gf_array_eq "final values" a.Sumcheck.final_values b.Sumcheck.final_values;
  Alcotest.(check int) "stats.mults" a.Sumcheck.stats.Sumcheck.mults b.Sumcheck.stats.Sumcheck.mults;
  (* tables must not be mutated by either prover *)
  Alcotest.check gf_testable "tables untouched" tables.(0).(0) tables.(0).(0)

(* --- orion: flat commit vs boxed pipeline oracle -------------------------- *)

let test_orion_flat_commit () =
  let rng = Rng.create 16L in
  let n = 1 lsl 10 in
  let table = Array.init n (fun _ -> Gf.random rng) in
  let params =
    { Orion.rows = 16; code = (module Rs); proximity_count = 4; zk = false }
  in
  let rows = 16 in
  let cols = n / rows in
  (* Boxed oracle: same pipeline assembled from public boxed entry points. *)
  let matrix = Array.init rows (fun r -> Array.sub table (r * cols) cols) in
  let encoded = Rs.encode_batch matrix in
  let code_len = Rs.blowup * cols in
  let gathered = Array.init code_len (fun j -> Array.map (fun row -> row.(j)) encoded) in
  let expected_root = Merkle.root (Merkle.build (Merkle.leaves_of_columns gathered)) in
  let committed, cm = Orion.commit params (Rng.create 1L) table in
  Alcotest.(check string) "root matches boxed pipeline"
    (Keccak.to_hex expected_root)
    (Keccak.to_hex cm.Orion.root);
  (* u from prove_eval must equal the boxed row combination eq(q_row)^T W. *)
  let point = Array.init 10 (fun i -> Gf.of_int (i + 2)) in
  let transcript = Transcript.create "test-vec-orion" in
  Orion.absorb_commitment transcript cm;
  let value, proof = Orion.prove_eval params committed transcript point in
  let q_row, q_col = Orion.split_point cm point in
  let eq_row = Mle.eq_table q_row in
  let expected_u =
    Array.init cols (fun j ->
        let acc = ref Gf.zero in
        for r = 0 to rows - 1 do
          acc := Gf.add !acc (Gf.mul eq_row.(r) matrix.(r).(j))
        done;
        !acc)
  in
  gf_array_eq "u matches boxed row combination" expected_u proof.Orion.u;
  let eq_col = Mle.eq_table q_col in
  let expected_value =
    let acc = ref Gf.zero in
    Array.iteri (fun j u -> acc := Gf.add !acc (Gf.mul u eq_col.(j))) expected_u;
    !acc
  in
  Alcotest.check gf_testable "value" expected_value value;
  (* And the proof verifies against a mirrored transcript. *)
  let vt = Transcript.create "test-vec-orion" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval params cm vt point value proof with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Zk_pcs.Verify_error.to_string e)

let test_orion_commit_domain_invariance () =
  let rng = Rng.create 17L in
  let n = 1 lsl 10 in
  let table = Array.init n (fun _ -> Gf.random rng) in
  let params = { Orion.default_params with Orion.rows = 16 } in
  let root d =
    Pool.with_domains d (fun () ->
        let _, cm = Orion.commit params (Rng.create 2L) table in
        Keccak.to_hex cm.Orion.root)
  in
  let reference = root 1 in
  List.iter
    (fun d -> Alcotest.(check string) (Printf.sprintf "%d domains" d) reference (root d))
    [ 2; 4 ]

(* --- allocation regression ----------------------------------------------- *)

(* Whether cross-module inlining is active (release profile). The dev
   profile passes -opaque, which keeps the Gf primitives out-of-line and
   makes even Fv loops box their intermediates — minor-heap-allocation
   assertions only hold on the optimized build. Probed with the native
   kernels pinned off: the C [mul_into] never allocates in any profile, so
   it would mask the very boxing this detector exists to find. *)
let inlining_active () =
  Nocap_native.Native.with_mode Nocap_native.Native.Off (fun () ->
      let n = 4096 in
      let v = Fv.create n in
      Fv.fill v Gf.one;
      let dst = Fv.create n in
      ignore (Sys.opaque_identity (Fv.mul_into ~dst v v));
      let m0 = Gc.minor_words () in
      ignore (Sys.opaque_identity (Fv.mul_into ~dst v v));
      let m1 = Gc.minor_words () in
      (m1 -. m0) /. float_of_int n < 1.0)

let test_allocation_regression () =
  (* Sized to fit the default minor heap so nothing is promoted mid-loop. *)
  let ntt_n = 1 lsl 10 and fold_n = 1 lsl 12 in
  let rng = Rng.create 18L in
  let ntt_buf = Fv.of_array (Array.init ntt_n (fun _ -> Gf.random rng)) in
  let plan = Ntt.Gf_fv.plan ntt_n in
  let fold_buf = Fv.of_array (Array.init fold_n (fun _ -> Gf.random rng)) in
  let r = Gf.random rng in
  let fold_pass () =
    let half = fold_n / 2 in
    for b = 0 to half - 1 do
      let x = Fv.unsafe_get fold_buf b in
      Fv.unsafe_set fold_buf b
        (Gf.add x (Gf.mul r (Gf.sub (Fv.unsafe_get fold_buf (b + half)) x)))
    done
  in
  (* Warm up (plan cache, first-touch), then measure one run of each. *)
  Ntt.Gf_fv.forward plan ntt_buf;
  fold_pass ();
  let measure f =
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    let m0 = Gc.minor_words () in
    f ();
    let m1 = Gc.minor_words () in
    let s1 = Gc.quick_stat () in
    (m1 -. m0, s1.Gc.major_words -. s0.Gc.major_words)
  in
  let ntt_minor, ntt_major = measure (fun () -> Ntt.Gf_fv.forward plan ntt_buf) in
  let fold_minor, fold_major = measure fold_pass in
  (* Major-heap words per element must be ~0 in every profile: nothing on
     these paths may allocate (or promote) into the major heap. *)
  Alcotest.(check bool) "NTT: no major-heap allocation" true
    (ntt_major /. float_of_int ntt_n < 0.01);
  Alcotest.(check bool) "fold: no major-heap allocation" true
    (fold_major /. float_of_int fold_n < 0.01);
  if inlining_active () then begin
    (* Optimized build: the loops must not allocate at all. *)
    Alcotest.(check bool)
      (Printf.sprintf "NTT: no minor allocation (%.1f words)" ntt_minor)
      true
      (ntt_minor /. float_of_int ntt_n < 0.5);
    Alcotest.(check bool)
      (Printf.sprintf "fold: no minor allocation (%.1f words)" fold_minor)
      true
      (fold_minor /. float_of_int fold_n < 0.5)
  end
  else
    (* Dev profile (-opaque): boxing is expected; the regression the test
       pins down is the major-heap one above. *)
    Printf.printf "test_vec: dev profile detected, skipping strict minor-allocation assertion\n%!"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_elementwise;
    QCheck_alcotest.to_alcotest prop_fold_sum;
    QCheck_alcotest.to_alcotest prop_views;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "arena frames + growth" `Quick test_arena;
    Alcotest.test_case "flat NTT = Gf_ntt" `Quick test_ntt_equiv;
    Alcotest.test_case "flat row NTTs" `Quick test_ntt_rows_flat;
    Alcotest.test_case "flat four-step NTT" `Quick test_four_step;
    Alcotest.test_case "hash_fv = hash_gf" `Quick test_hash_fv;
    Alcotest.test_case "concat-free hash2" `Quick test_hash2_concat_free;
    Alcotest.test_case "lane-aligned hash_gf" `Quick test_hash_gf_packed_oracle;
    Alcotest.test_case "leaves_of_matrix" `Quick test_leaves_of_matrix;
    Alcotest.test_case "RS encode_rows_fv" `Quick test_rs_rows_fv;
    Alcotest.test_case "expander encode_rows_fv" `Quick test_expander_rows_fv;
    Alcotest.test_case "sumcheck prove = prove_arrays" `Quick test_sumcheck_prove_equiv;
    Alcotest.test_case "orion flat commit vs boxed pipeline" `Quick test_orion_flat_commit;
    Alcotest.test_case "orion commit domain invariance" `Quick test_orion_commit_domain_invariance;
    Alcotest.test_case "allocation regression" `Quick test_allocation_regression;
  ]
