(* The streaming out-of-core prover pinned against the in-memory oracle.

   Every streaming component — spill files, blocked eq tables, ranged
   SpMV, chunked witness emission, the incremental Merkle builder, the
   recompute-halves sumcheck, the out-of-core PCS commits/openings, and
   the end-to-end Spartan pipeline — must be *byte-identical* to its
   in-memory counterpart: Goldilocks ops are exact and canonical, so any
   algebraically equal evaluation order yields the same bits, the same
   transcripts, the same proofs. The suite runs under every NOCAP_NATIVE
   mode via the runtest matrix in test/dune, and the Spartan equivalence
   sweeps domain counts 1/2/3. *)

module Gf = Zk_field.Gf
module Fv = Nocap_vec.Fv
module Spill = Nocap_vec.Spill
module Mle = Zk_poly.Mle
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Merkle = Zk_merkle.Merkle
module Sumcheck = Zk_sumcheck.Sumcheck
module Engine = Zk_pcs.Engine
module Transcript = Zk_hash.Transcript
module Orion = Zk_orion.Orion
module Fri_pcs = Zk_orion.Fri_pcs
module Pool = Nocap_parallel.Pool
module Rng = Zk_util.Rng
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Spartan = Zk_spartan.Spartan
module Spartan_fri = Zk_spartan.Spartan.Make (Zk_orion.Fri_pcs)

let qcheck ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gf_of_rng rng = Gf.of_int64 (Rng.next rng)
let random_gf_array rng n = Array.init n (fun _ -> gf_of_rng rng)

let check_gf_array msg a b =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Gf.equal x b.(i)) then Alcotest.failf "%s: element %d differs" msg i)
    a

(* --- Spill files -------------------------------------------------------- *)

let test_spill_roundtrip () =
  let before = Spill.live_files () in
  List.iter
    (fun n ->
      let rng = Rng.create (Int64.of_int (n + 7)) in
      let data = random_gf_array rng n in
      let s = Spill.create ~tag:"test" ~spill:true n in
      Alcotest.(check bool) "spilled" true (Spill.is_spilled s);
      (* write in ragged chunks *)
      let pos = ref 0 in
      let step = ref 3 in
      while !pos < n do
        let len = min !step (n - !pos) in
        Spill.write s ~pos:!pos (Fv.of_array (Array.sub data !pos len));
        pos := !pos + len;
        step := 1 + ((!step * 2) mod 11)
      done;
      (* blocked read-back *)
      let buf = Fv.create (min 5 n) in
      let pos = ref 0 in
      while !pos < n do
        let len = min (Fv.length buf) (n - !pos) in
        let v = Fv.sub_view buf ~pos:0 ~len in
        Spill.read s ~pos:!pos v;
        for i = 0 to len - 1 do
          if not (Gf.equal (Fv.get v i) data.(!pos + i)) then
            Alcotest.failf "n=%d: read mismatch at %d" n (!pos + i)
        done;
        pos := !pos + len
      done;
      (* point reads *)
      List.iter
        (fun i ->
          if i < n && not (Gf.equal (Spill.get s i) data.(i)) then
            Alcotest.failf "n=%d: point get mismatch at %d" n i)
        [ 0; 1; n / 2; n - 1 ];
      (* a spilled vector has no in-RAM view *)
      (try
         ignore (Spill.as_fv s);
         Alcotest.fail "as_fv on a spilled vector should raise"
       with Invalid_argument _ -> ());
      check_gf_array (Printf.sprintf "to_fv n=%d" n) data (Fv.to_array (Spill.to_fv s));
      Spill.free s;
      Spill.free s (* idempotent *))
    [ 1; 7; 64; 1000 ];
  Alcotest.(check int) "all spill files released" before (Spill.live_files ())

let test_spill_ram_backing () =
  let rng = Rng.create 11L in
  let data = random_gf_array rng 33 in
  let s = Spill.create ~tag:"ram" ~spill:false 33 in
  Alcotest.(check bool) "not spilled" false (Spill.is_spilled s);
  Spill.write s ~pos:0 (Fv.of_array data);
  check_gf_array "ram as_fv" data (Fv.to_array (Spill.as_fv s));
  let wrapped = Spill.of_fv (Fv.of_array data) in
  check_gf_array "of_fv" data (Fv.to_array (Spill.to_fv wrapped));
  Spill.free s

let test_spill_reader () =
  let n = 513 in
  let rng = Rng.create 42L in
  let data = random_gf_array rng n in
  let s = Spill.create ~tag:"reader" ~spill:true n in
  Spill.write s ~pos:0 (Fv.of_array data);
  let r = Spill.Reader.create ~window:32 s in
  (* sequential, strided, backward, random: window reloads must be invisible *)
  let probe i =
    if not (Gf.equal (Spill.Reader.get r i) data.(i)) then
      Alcotest.failf "reader mismatch at %d" i
  in
  for i = 0 to n - 1 do
    probe i
  done;
  let i = ref (n - 1) in
  while !i >= 0 do
    probe !i;
    i := !i - 37
  done;
  List.iter probe [ 0; n - 1; 256; 31; 32; 33; 511; 1 ];
  Spill.free s

let test_spill_bounds () =
  let s = Spill.create ~tag:"bounds" ~spill:true 8 in
  let buf = Fv.create 4 in
  (try
     Spill.read s ~pos:6 buf;
     Alcotest.fail "out-of-range read should raise"
   with Invalid_argument _ -> ());
  (try
     Spill.write s ~pos:(-1) buf;
     Alcotest.fail "negative write should raise"
   with Invalid_argument _ -> ());
  Spill.free s

(* --- blocked eq tables -------------------------------------------------- *)

let prop_eq_table_range =
  qcheck ~count:60 "eq_table_range = eq_table slice"
    QCheck.(pair (int_range 0 8) small_int)
    (fun (l, seed) ->
      let rng = Rng.create (Int64.of_int (succ seed)) in
      let point = random_gf_array rng l in
      let full = Mle.eq_table point in
      let n = 1 lsl l in
      (* every aligned power-of-two block size *)
      let ok = ref true in
      let len = ref 1 in
      while !len <= n do
        let lo = ref 0 in
        while !lo < n do
          let part = Mle.eq_table_range point ~lo:!lo ~len:!len in
          for i = 0 to !len - 1 do
            if not (Gf.equal part.(i) full.(!lo + i)) then ok := false
          done;
          lo := !lo + !len
        done;
        len := !len * 2
      done;
      !ok)

(* --- ranged SpMV -------------------------------------------------------- *)

let random_sparse rng ~nrows ~ncols ~per_row =
  let entries = ref [] in
  for r = 0 to nrows - 1 do
    for _ = 1 to 1 + Rng.int rng per_row do
      entries := (r, Rng.int rng ncols, gf_of_rng rng) :: !entries
    done
  done;
  Sparse.of_entries ~nrows ~ncols !entries

let test_spmv_ranges () =
  let rng = Rng.create 77L in
  let m = random_sparse rng ~nrows:37 ~ncols:29 ~per_row:4 in
  let x = random_gf_array rng 29 in
  let y = random_gf_array rng 37 in
  let full = Sparse.spmv m x in
  let fullt = Sparse.spmv_transpose m y in
  List.iter
    (fun (lo, hi) ->
      let part = Sparse.spmv_range m ~x:(fun j -> x.(j)) ~r_lo:lo ~r_hi:hi in
      check_gf_array
        (Printf.sprintf "spmv_range [%d,%d)" lo hi)
        (Array.sub full lo (hi - lo))
        part)
    [ (0, 37); (0, 1); (36, 37); (5, 21); (17, 18) ];
  List.iter
    (fun (lo, hi) ->
      let part = Sparse.spmv_transpose_range m ~y:(fun i -> y.(i)) ~c_lo:lo ~c_hi:hi in
      check_gf_array
        (Printf.sprintf "spmv_transpose_range [%d,%d)" lo hi)
        (Array.sub fullt lo (hi - lo))
        part)
    [ (0, 29); (0, 1); (28, 29); (3, 17) ]

(* --- chunked witness emission ------------------------------------------- *)

let chain_circuit seed steps =
  let rng = Rng.create (Int64.of_int seed) in
  let b = Builder.create () in
  let cur = ref (Builder.witness b (Gf.of_int (2 + Rng.int rng 100))) in
  for _ = 1 to steps do
    let other = Builder.witness b (Gf.of_int (1 + Rng.int rng 100)) in
    cur :=
      (match Rng.int rng 3 with
      | 0 -> Gadgets.mul b !cur other
      | 1 -> Gadgets.add b !cur other
      | _ -> Gadgets.select b ~cond:(Gadgets.is_zero b other) !cur other)
  done;
  let out = Builder.input b (Builder.value b !cur) in
  Gadgets.assert_equal b (Builder.lc_var !cur) (Builder.lc_var out);
  Builder.finalize b

let test_z_blocks () =
  let inst, asn = chain_circuit 3 50 in
  let full = R1cs.z inst asn in
  let n = Array.length full in
  List.iter
    (fun (pos, len) ->
      check_gf_array
        (Printf.sprintf "z_block pos=%d len=%d" pos len)
        (Array.sub full pos len)
        (R1cs.z_block inst asn ~pos ~len))
    [ (0, n); (0, 1); (n - 1, 1); (n / 2, n / 2); (3, 17) ];
  List.iter
    (fun block ->
      let out = Array.make n Gf.zero in
      let seen = ref 0 in
      R1cs.iter_z_blocks inst asn ~block (fun ~pos slice ->
          Array.blit slice 0 out pos (Array.length slice);
          seen := !seen + Array.length slice);
      Alcotest.(check int) (Printf.sprintf "iter covers all (block=%d)" block) n !seen;
      check_gf_array (Printf.sprintf "iter_z_blocks block=%d" block) full out)
    [ 1; 7; 64; n; 3 * n ]

(* --- incremental Merkle builder ----------------------------------------- *)

let test_merkle_builder () =
  let rng = Rng.create 99L in
  List.iter
    (fun n ->
      let leaves =
        Array.init n (fun _ -> Merkle.leaf_of_column (random_gf_array rng 2))
      in
      let reference = Merkle.build leaves in
      (* push in ragged chunks *)
      let b = Merkle.Builder.create n in
      let pos = ref 0 in
      let step = ref 1 in
      while !pos < n do
        let len = min !step (n - !pos) in
        Merkle.Builder.add b (Array.sub leaves !pos len);
        pos := !pos + len;
        step := 1 + ((!step * 3) mod 7)
      done;
      let tree = Merkle.Builder.finish b in
      Alcotest.(check string)
        (Printf.sprintf "root n=%d" n)
        (Merkle.root reference) (Merkle.root tree);
      for i = 0 to n - 1 do
        if Merkle.path reference i <> Merkle.path tree i then
          Alcotest.failf "n=%d: path %d differs" n i
      done)
    [ 1; 2; 3; 5; 8; 13; 16; 33 ]

(* --- streaming sumcheck ------------------------------------------------- *)

let comb2 v = Gf.mul v.(0) v.(1)
let comb3 v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3))

let check_sumcheck_equal msg (a : Sumcheck.prover_result) (b : Sumcheck.prover_result) =
  Alcotest.(check int)
    (msg ^ ": rounds")
    (Array.length a.Sumcheck.proof.Sumcheck.round_polys)
    (Array.length b.Sumcheck.proof.Sumcheck.round_polys);
  Array.iteri
    (fun i g -> check_gf_array (Printf.sprintf "%s: round %d" msg i) g
        b.Sumcheck.proof.Sumcheck.round_polys.(i))
    a.Sumcheck.proof.Sumcheck.round_polys;
  check_gf_array (msg ^ ": challenges") a.Sumcheck.challenges b.Sumcheck.challenges;
  check_gf_array (msg ^ ": final values") a.Sumcheck.final_values b.Sumcheck.final_values;
  Alcotest.(check bool)
    (msg ^ ": stats")
    true
    (a.Sumcheck.stats = b.Sumcheck.stats)

let run_sumcheck_pair ~l ~degree ~tables_count ~comb ~comb_mults ~budget seed =
  let n = 1 lsl l in
  let rng = Rng.create (Int64.of_int (succ seed)) in
  let tables = Array.init tables_count (fun _ -> random_gf_array rng n) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to n - 1 do
      acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) tables))
    done;
    !acc
  in
  let t1 = Transcript.create "stream-test" in
  let reference =
    Sumcheck.prove ~comb_mults t1 ~degree ~tables ~comb ~claim
  in
  let t2 = Transcript.create "stream-test" in
  let spills = Array.map (fun t -> Spill.of_fv (Fv.of_array t)) tables in
  let streamed =
    Sumcheck.prove_streaming ~comb_mults ~budget_bytes:budget t2 ~degree
      ~tables:spills ~comb ~claim
  in
  let msg = Printf.sprintf "l=%d budget=%d" l budget in
  check_sumcheck_equal msg reference streamed;
  (* the transcripts must have ended in the same state *)
  Alcotest.(check bool)
    (msg ^ ": transcript state")
    true
    (Gf.equal (Transcript.challenge_gf t1 "after") (Transcript.challenge_gf t2 "after"))

let test_sumcheck_streaming () =
  (* budgets chosen to force: never spills (huge), spills the first round
     only, spills most rounds (tiny) *)
  List.iter
    (fun budget ->
      List.iter
        (fun l ->
          run_sumcheck_pair ~l ~degree:2 ~tables_count:2 ~comb:comb2 ~comb_mults:1
            ~budget (l + budget);
          run_sumcheck_pair ~l ~degree:3 ~tables_count:4 ~comb:comb3 ~comb_mults:2
            ~budget (l * 31 + budget))
        [ 0; 1; 2; 5; 8 ])
    [ 256; 4 * 1024; 64 * 1024 * 1024 ]

let test_sumcheck_spilled_tables () =
  (* same equivalence with the inputs living in actual files *)
  let l = 7 in
  let n = 1 lsl l in
  let rng = Rng.create 1234L in
  let tables = Array.init 2 (fun _ -> random_gf_array rng n) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to n - 1 do
      acc := Gf.add !acc (comb2 [| tables.(0).(b); tables.(1).(b) |])
    done;
    !acc
  in
  let t1 = Transcript.create "stream-test" in
  let reference = Sumcheck.prove ~comb_mults:1 t1 ~degree:2 ~tables ~comb:comb2 ~claim in
  let t2 = Transcript.create "stream-test" in
  let spills =
    Array.map
      (fun t ->
        let s = Spill.create ~tag:"sc" ~spill:true n in
        Spill.write s ~pos:0 (Fv.of_array t);
        s)
      tables
  in
  let streamed =
    Sumcheck.prove_streaming ~comb_mults:1 ~budget_bytes:512 t2 ~degree:2
      ~tables:spills ~comb:comb2 ~claim
  in
  Array.iter Spill.free spills;
  check_sumcheck_equal "spilled tables" reference streamed

(* --- out-of-core PCS commits and openings ------------------------------- *)

let budget_engine bytes = Engine.create ~stream_budget_bytes:bytes ()

let test_orion_streamed_equal () =
  let params = { Orion.default_params with Orion.rows = 8 } in
  List.iter
    (fun l ->
      let rng = Rng.create 5L in
      let table = random_gf_array rng (1 lsl l) in
      let point = random_gf_array (Rng.create 6L) l in
      let cd, cm_d = Orion.commit params (Rng.create 9L) table in
      let cs, cm_s = Orion.commit ~engine:(budget_engine 2048) params (Rng.create 9L) table in
      Alcotest.(check string) "orion root" cm_d.Orion.root cm_s.Orion.root;
      let t1 = Transcript.create "orion-stream" in
      Orion.absorb_commitment t1 cm_d;
      let v1, p1 = Orion.prove_eval params cd t1 point in
      let t2 = Transcript.create "orion-stream" in
      Orion.absorb_commitment t2 cm_s;
      let v2, p2 = Orion.prove_eval ~engine:(budget_engine 2048) params cs t2 point in
      Alcotest.(check bool) "orion value" true (Gf.equal v1 v2);
      Alcotest.(check bool) "orion proof" true (p1 = p2);
      (match Orion.verify_eval params cm_s t1 point v2 p2 with
      | Ok _ | Error _ -> ());
      Orion.free_committed cs;
      Orion.free_committed cd)
    [ 4; 7; 9 ]

let test_fri_streamed_equal () =
  let params = Fri_pcs.test_params in
  List.iter
    (fun l ->
      let rng = Rng.create 15L in
      let table = random_gf_array rng (1 lsl l) in
      let point = random_gf_array (Rng.create 16L) l in
      let cd, cm_d = Fri_pcs.commit params (Rng.create 19L) table in
      let cs, cm_s =
        Fri_pcs.commit ~engine:(budget_engine 2048) params (Rng.create 19L) table
      in
      Alcotest.(check string) "fri root" cm_d.Fri_pcs.root cm_s.Fri_pcs.root;
      let t1 = Transcript.create "fri-stream" in
      Fri_pcs.absorb_commitment t1 cm_d;
      let v1, p1 = Fri_pcs.open_at params cd t1 point in
      let t2 = Transcript.create "fri-stream" in
      Fri_pcs.absorb_commitment t2 cm_s;
      let v2, p2 = Fri_pcs.open_at ~engine:(budget_engine 2048) params cs t2 point in
      Alcotest.(check bool) "fri value" true (Gf.equal v1 v2);
      Alcotest.(check bool) "fri proof" true (p1 = p2);
      Fri_pcs.free_committed cs;
      Fri_pcs.free_committed cd)
    [ 2; 5; 8 ]

(* --- end-to-end Spartan: streaming bytes = in-memory bytes -------------- *)

let spartan_pair_orion ~budget inst asn =
  let reference, _ = Spartan.prove Spartan.test_params inst asn in
  let streamed, _ = Spartan.prove ~engine:(budget_engine budget) Spartan.test_params inst asn in
  (Spartan.proof_to_bytes reference, Spartan.proof_to_bytes streamed)

let spartan_pair_fri ~budget inst asn =
  let reference, _ = Spartan_fri.prove Spartan_fri.test_params inst asn in
  let streamed, _ =
    Spartan_fri.prove ~engine:(budget_engine budget) Spartan_fri.test_params inst asn
  in
  (Spartan_fri.proof_to_bytes reference, Spartan_fri.proof_to_bytes streamed)

let test_spartan_streaming_equal () =
  let live_before = Spill.live_files () in
  let inst, asn = chain_circuit 21 120 in
  List.iter
    (fun budget ->
      let r, s = spartan_pair_orion ~budget inst asn in
      Alcotest.(check bool)
        (Printf.sprintf "orion bytes equal (budget=%d)" budget)
        true (Bytes.equal r s);
      let r, s = spartan_pair_fri ~budget inst asn in
      Alcotest.(check bool)
        (Printf.sprintf "fri bytes equal (budget=%d)" budget)
        true (Bytes.equal r s))
    [ 2 * 1024; 64 * 1024; 256 * 1024 * 1024 ];
  Alcotest.(check int) "no leaked spill files" live_before (Spill.live_files ())

let test_spartan_streaming_domains () =
  (* the full pipeline across domain counts: streaming bytes must match the
     single-domain in-memory reference at every pool size *)
  let inst, asn = chain_circuit 8 60 in
  let reference, _ = Spartan.prove Spartan.test_params inst asn in
  let reference = Spartan.proof_to_bytes reference in
  let reference_fri, _ = Spartan_fri.prove Spartan_fri.test_params inst asn in
  let reference_fri = Spartan_fri.proof_to_bytes reference_fri in
  List.iter
    (fun d ->
      Pool.with_domains d (fun () ->
          let streamed, _ =
            Spartan.prove ~engine:(budget_engine 8192) Spartan.test_params inst asn
          in
          Alcotest.(check bool)
            (Printf.sprintf "orion domains=%d" d)
            true
            (Bytes.equal reference (Spartan.proof_to_bytes streamed));
          let streamed, _ =
            Spartan_fri.prove ~engine:(budget_engine 8192) Spartan_fri.test_params inst
              asn
          in
          Alcotest.(check bool)
            (Printf.sprintf "fri domains=%d" d)
            true
            (Bytes.equal reference_fri (Spartan_fri.proof_to_bytes streamed))))
    [ 1; 2; 3 ]

let test_spartan_streaming_verifies () =
  let inst, asn = chain_circuit 4 80 in
  let io = R1cs.public_io inst asn in
  let proof, _ = Spartan.prove ~engine:(budget_engine 4096) Spartan.test_params inst asn in
  (match Spartan.verify Spartan.test_params inst ~io proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "orion streamed proof rejected: %s" (Zk_pcs.Verify_error.to_string e));
  let proof, _ =
    Spartan_fri.prove ~engine:(budget_engine 4096) Spartan_fri.test_params inst asn
  in
  match Spartan_fri.verify Spartan_fri.test_params inst ~io proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fri streamed proof rejected: %s" (Zk_pcs.Verify_error.to_string e)

(* --- configuration knob ------------------------------------------------- *)

let test_budget_knob () =
  (try
     ignore (Engine.create ~stream_budget_bytes:0 ());
     Alcotest.fail "zero budget should raise"
   with Invalid_argument _ -> ());
  (try
     ignore (Engine.create ~stream_budget_bytes:(-5) ());
     Alcotest.fail "negative budget should raise"
   with Invalid_argument _ -> ());
  let lookup kvs k = List.assoc_opt k kvs in
  (match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_STREAM_BUDGET_MB", "64") ]) with
  | Ok c -> Alcotest.(check (option int)) "parsed MB" (Some 64) c.Engine.Config.stream_budget_mb
  | Error e -> Alcotest.failf "well-formed budget rejected: %s" e);
  List.iter
    (fun bad ->
      match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_STREAM_BUDGET_MB", bad) ]) with
      | Ok _ -> Alcotest.failf "malformed budget %S accepted" bad
      | Error _ -> ())
    [ "abc"; "-3"; "0"; "12.5"; "" ];
  (* byte-granular override wins over the MB knob *)
  let config =
    { Engine.Config.default with Engine.Config.stream_budget_mb = Some 512 }
  in
  let e = Engine.create ~config ~stream_budget_bytes:4096 () in
  Alcotest.(check (option int)) "bytes win" (Some 4096) (Engine.stream_budget_bytes e);
  let e = Engine.create ~config () in
  Alcotest.(check (option int))
    "MB scaled" (Some (512 * 1024 * 1024))
    (Engine.stream_budget_bytes e)

let suite =
  [
    Alcotest.test_case "spill roundtrip + cleanup" `Quick test_spill_roundtrip;
    Alcotest.test_case "spill RAM backing" `Quick test_spill_ram_backing;
    Alcotest.test_case "spill reader windows" `Quick test_spill_reader;
    Alcotest.test_case "spill bounds checks" `Quick test_spill_bounds;
    prop_eq_table_range;
    Alcotest.test_case "ranged spmv = full" `Quick test_spmv_ranges;
    Alcotest.test_case "z blocks = z" `Quick test_z_blocks;
    Alcotest.test_case "merkle builder = build" `Quick test_merkle_builder;
    Alcotest.test_case "sumcheck streaming = in-memory" `Quick test_sumcheck_streaming;
    Alcotest.test_case "sumcheck over spilled tables" `Quick test_sumcheck_spilled_tables;
    Alcotest.test_case "orion streamed = dense" `Quick test_orion_streamed_equal;
    Alcotest.test_case "fri streamed = dense" `Quick test_fri_streamed_equal;
    Alcotest.test_case "spartan streaming bytes = in-memory" `Quick
      test_spartan_streaming_equal;
    Alcotest.test_case "spartan streaming across domains" `Quick
      test_spartan_streaming_domains;
    Alcotest.test_case "spartan streamed proofs verify" `Quick
      test_spartan_streaming_verifies;
    Alcotest.test_case "budget knob parse + precedence" `Quick test_budget_knob;
  ]
