(* Equivalence suite for the native (C) kernel layer: every stub is checked
   against its OCaml oracle — QCheck over raw 64-bit patterns (including
   non-canonical residues >= p) for the field kernels, exhaustive message
   lengths across the sponge rate boundaries for the hashes, offset/sub-view
   torture for the in-place permutation and the column sponges, and a
   full-pipeline proof-byte golden across all three modes and domain counts
   1/2/3.

   The dispatchers are bit-exact by construction (the C mirrors the OCaml
   formulas operation for operation), so every comparison here is for raw
   equality, not "equal mod p". *)

module Native = Nocap_native.Native
module Fv = Nocap_vec.Fv
module Gf = Zk_field.Gf
module Rng = Zk_util.Rng
module Keccak = Zk_hash.Keccak
module Gf_fv = Zk_ntt.Ntt.Gf_fv
module Rs = Zk_ecc.Reed_solomon
module Pool = Nocap_parallel.Pool
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Spartan = Zk_spartan.Spartan
module Serialize = Zk_spartan.Serialize

let p_int64 = 0xFFFF_FFFF_0000_0001L

(* All three modes; every cross-mode check compares Scalar and Simd against
   the Off (pure OCaml) result. On hosts without AVX2/NEON the Simd leg
   degrades to the scalar C bodies — the check still runs. *)
let modes = [ Native.Off; Native.Scalar; Native.Simd ]

let check_modes name (f : unit -> string) =
  let expected = Native.with_mode Native.Off f in
  List.iter
    (fun m ->
      let got = Native.with_mode m f in
      Alcotest.(check string)
        (Printf.sprintf "%s [%s]" name (Native.mode_to_string m))
        expected got)
    modes

(* --- raw 64-bit generators ---------------------------------------------- *)

(* Any bit pattern, with the reduction-boundary neighbourhood over-weighted:
   0, 1, eps, p-1, p, p+1, all-ones. The kernels must agree with the OCaml
   formulas even on non-canonical inputs (the dispatch sites never
   canonicalize first). *)
let gen_raw64 =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          oneofl
            [
              0L; 1L; 0xFFFF_FFFFL; 0xFFFF_FFFF_0000_0000L; p_int64;
              0xFFFF_FFFF_0000_0002L; Int64.minus_one;
            ] );
        ( 5,
          map2
            (fun hi lo ->
              Int64.logor
                (Int64.shift_left (Int64.of_int hi) 48)
                (Int64.logand (Int64.of_int lo) 0xFFFF_FFFF_FFFFL))
            (int_range 0 0xFFFF) (int_range 0 max_int) );
      ])

let arb_raw_vec =
  let gen =
    QCheck.Gen.(int_range 0 70 >>= fun n -> array_repeat n gen_raw64)
  in
  QCheck.make ~print:(fun a -> Printf.sprintf "<%d raw words>" (Array.length a)) gen

let arb_raw_vec_pair =
  let gen =
    QCheck.Gen.(
      int_range 0 70 >>= fun n ->
      pair (array_repeat n gen_raw64) (array_repeat n gen_raw64))
  in
  QCheck.make
    ~print:(fun (a, _) -> Printf.sprintf "<2 x %d raw words>" (Array.length a))
    gen

(* Gf.t = int64, so raw patterns go straight into an Fv. *)
let fv_of_raw (a : int64 array) =
  let v = Fv.create (Array.length a) in
  Array.iteri (Fv.set v) a;
  v

let fv_raw_eq a b =
  Fv.length a = Fv.length b
  &&
  let ok = ref true in
  for i = 0 to Fv.length a - 1 do
    if not (Int64.equal (Fv.get a i) (Fv.get b i)) then ok := false
  done;
  !ok

let random_fill rng v =
  for i = 0 to Fv.length v - 1 do
    Fv.set v i (Gf.random rng)
  done

(* --- Goldilocks scalar + elementwise kernels ----------------------------- *)

let test_gl_pow () =
  let rng = Rng.create 0x90AL in
  (* Fermat: a^(p-1) = 1 for canonical non-zero a. *)
  for _ = 1 to 50 do
    let a = Gf.random rng in
    if not (Gf.equal a Gf.zero) then
      Alcotest.(check int64) "fermat" 1L (Native.gl_pow a (Int64.pred p_int64))
  done;
  (* Against the OCaml ladder on arbitrary canonical bases/exponents. *)
  for _ = 1 to 200 do
    let a = Gf.random rng in
    let e = Int64.of_int (Rng.int rng 1_000_000) in
    Alcotest.(check int64) "pow vs Gf.pow" (Gf.pow a e) (Native.gl_pow a e)
  done

let prop_elementwise =
  QCheck.Test.make ~count:300 ~name:"native fv add/sub/mul/scale/axpy vs OCaml on raw bit patterns"
    arb_raw_vec_pair (fun (ra, rb) ->
      let n = Array.length ra in
      let a = fv_of_raw ra and b = fv_of_raw rb in
      let s = if n = 0 then 0L else ra.(0) in
      let oracle op =
        let dst = Fv.create n in
        Native.with_mode Native.Off (fun () -> op dst);
        dst
      in
      let native mode op =
        let dst = Fv.create n in
        Native.with_mode mode (fun () -> op dst);
        dst
      in
      let ops =
        [
          ("add", fun dst -> Fv.add_into ~dst a b);
          ("sub", fun dst -> Fv.sub_into ~dst a b);
          ("mul", fun dst -> Fv.mul_into ~dst a b);
          ("scale", fun dst -> Fv.scale_into ~dst a s);
          ( "axpy",
            fun dst ->
              Fv.blit ~src:b ~src_pos:0 ~dst ~dst_pos:0 ~len:n;
              Fv.axpy_into ~dst s a );
        ]
      in
      List.for_all
        (fun (name, op) ->
          let expected = oracle op in
          List.for_all
            (fun m ->
              fv_raw_eq expected (native m op)
              || QCheck.Test.fail_reportf "%s diverged under %s" name
                   (Native.mode_to_string m))
            [ Native.Scalar; Native.Simd ])
        ops)

(* --- NTT / RS encode ----------------------------------------------------- *)

let test_ntt_equiv () =
  let rng = Rng.create 0xA11CEL in
  List.iter
    (fun log_n ->
      let n = 1 lsl log_n in
      let plan = Gf_fv.plan n in
      let input = Array.init n (fun _ -> Gf.random rng) in
      let ocaml_buf = Fv.of_array input in
      Native.with_mode Native.Off (fun () -> Gf_fv.forward plan ocaml_buf);
      List.iter
        (fun m ->
          let c_buf = Fv.of_array input in
          Native.with_mode m (fun () ->
              Native.ntt_forward c_buf (Gf_fv.twiddles plan));
          Alcotest.(check bool)
            (Printf.sprintf "forward n=%d [%s]" n (Native.mode_to_string m))
            true (fv_raw_eq ocaml_buf c_buf);
          (* Inverse kernel: exact roundtrip back to the input. *)
          Native.with_mode m (fun () ->
              Native.ntt_inverse c_buf (Gf_fv.inv_twiddles plan) (Gf_fv.n_inv plan));
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip n=%d [%s]" n (Native.mode_to_string m))
            true (fv_raw_eq (Fv.of_array input) c_buf))
        [ Native.Scalar; Native.Simd ];
      (* The dispatching inverse agrees with the OCaml inverse on the
         forward image. *)
      let inv_ocaml = Fv.copy ocaml_buf in
      Native.with_mode Native.Off (fun () -> Gf_fv.inverse plan inv_ocaml);
      let inv_c = Fv.copy ocaml_buf in
      Native.with_mode Native.Simd (fun () -> Gf_fv.inverse plan inv_c);
      Alcotest.(check bool)
        (Printf.sprintf "inverse n=%d" n)
        true (fv_raw_eq inv_ocaml inv_c))
    [ 0; 1; 2; 3; 5; 8; 10 ]

let test_rs_encode_equiv () =
  let rng = Rng.create 0x5EEDL in
  List.iter
    (fun cols ->
      let code_len = Rs.blowup * cols in
      let src = Fv.create cols in
      random_fill rng src;
      let encode mode =
        let dst = Fv.create code_len in
        Native.with_mode mode (fun () -> Rs.encode_row_into ~src ~dst);
        dst
      in
      let expected = encode Native.Off in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "encode_row_into cols=%d [%s]" cols
               (Native.mode_to_string m))
            true
            (fv_raw_eq expected (encode m)))
        [ Native.Scalar; Native.Simd ];
      (* Raw fused stub against the dispatcher result; dst deliberately
         pre-filled with garbage to catch a missing zero-pad. *)
      let plan = Gf_fv.plan code_len in
      let dst_raw = Fv.create code_len in
      Fv.fill dst_raw (Gf.of_int 0x5A5A5A);
      Native.with_mode Native.Simd (fun () ->
          Native.rs_encode_row src dst_raw (Gf_fv.twiddles plan));
      Alcotest.(check bool)
        (Printf.sprintf "rs_encode_row raw cols=%d" cols)
        true (fv_raw_eq expected dst_raw))
    [ 1; 2; 8; 64 ]

(* Batched rows through the dispatching row transform (the shape the Orion
   commit pipeline uses), odd row counts included. *)
let test_ntt_rows_equiv () =
  let rng = Rng.create 0xB0B5L in
  List.iter
    (fun (rows, cols) ->
      let plan = Gf_fv.plan cols in
      let flat = Fv.create (rows * cols) in
      random_fill rng flat;
      let run mode =
        let buf = Fv.copy flat in
        Native.with_mode mode (fun () -> Gf_fv.forward_rows_flat plan ~rows buf);
        buf
      in
      let expected = run Native.Off in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "forward_rows_flat %dx%d [%s]" rows cols
               (Native.mode_to_string m))
            true
            (fv_raw_eq expected (run m)))
        [ Native.Scalar; Native.Simd ])
    [ (1, 64); (3, 32); (7, 128); (16, 16) ]

(* --- Keccak / SHA3 ------------------------------------------------------- *)

(* Every length from the empty message across both rate boundaries (one
   block = 136 bytes): exercises the padding byte landing in every lane
   position, including the rem = rate case. *)
let test_sha3_all_lengths () =
  for len = 0 to 300 do
    let msg = Bytes.init len (fun i -> Char.chr ((i * 37 + len) land 0xff)) in
    check_modes
      (Printf.sprintf "sha3_256 len=%d" len)
      (fun () -> Keccak.sha3_256 msg)
  done;
  (* FIPS 202 known answers pin the absolute value, not just agreement. *)
  Alcotest.(check string)
    "sha3(\"\")" "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (Keccak.to_hex (Keccak.sha3_256 Bytes.empty));
  Alcotest.(check string)
    "sha3(\"abc\")" "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (Keccak.to_hex (Keccak.sha3_256 (Bytes.of_string "abc")))

let test_sha3_x4 () =
  List.iter
    (fun len ->
      let msgs =
        Array.init 4 (fun l ->
            Bytes.init len (fun i -> Char.chr ((l + (i * 11)) land 0xff)))
      in
      let expected =
        Native.with_mode Native.Off (fun () -> Array.map Keccak.sha3_256 msgs)
      in
      List.iter
        (fun m ->
          let outs = Array.init 4 (fun _ -> Bytes.create 32) in
          Native.with_mode m (fun () -> Native.sha3_x4 msgs outs);
          Array.iteri
            (fun i d ->
              Alcotest.(check string)
                (Printf.sprintf "sha3_x4 len=%d lane=%d [%s]" len i
                   (Native.mode_to_string m))
                expected.(i)
                (Bytes.to_string d))
            outs)
        [ Native.Scalar; Native.Simd ])
    [ 0; 1; 135; 136; 137; 272 ]

let test_sha3_batch () =
  (* Non-uniform lengths (parallel_map path) and a uniform batch with a
     non-multiple-of-4 count (x4 quads + serial tail). *)
  let mixed =
    Array.init 11 (fun i -> Bytes.init (i * 29) (fun j -> Char.chr ((i + j) land 0xff)))
  in
  let uniform =
    Array.init 13 (fun i -> Bytes.init 96 (fun j -> Char.chr ((i * 7 + j) land 0xff)))
  in
  List.iter
    (fun (name, batch) ->
      check_modes name (fun () -> String.concat "" (Array.to_list (Keccak.sha3_256_batch batch))))
    [ ("sha3_256_batch mixed", mixed); ("sha3_256_batch uniform-13", uniform) ]

let test_hash_entry_points () =
  let rng = Rng.create 0xCAFEL in
  List.iter
    (fun n ->
      let elems = Array.init n (fun _ -> Gf.random rng) in
      check_modes
        (Printf.sprintf "hash_gf n=%d" n)
        (fun () -> Keccak.hash_gf elems))
    [ 0; 1; 3; 4; 17; 100 ];
  (* hash_fv over a misaligned sub-view: the C base pointer starts at an
     odd element offset, off any 32-byte boundary. *)
  let big = Fv.create 67 in
  random_fill rng big;
  List.iter
    (fun (pos, len) ->
      let v = Fv.sub_view big ~pos ~len in
      check_modes
        (Printf.sprintf "hash_fv pos=%d len=%d" pos len)
        (fun () -> Keccak.hash_fv v))
    [ (0, 40); (3, 40); (1, 0); (5, 17) ];
  let d1 = Keccak.sha3_256 (Bytes.of_string "left") in
  let d2 = Keccak.sha3_256 (Bytes.of_string "right") in
  check_modes "hash2" (fun () -> Keccak.hash2 d1 d2);
  let level = Array.init 16 (fun i -> Keccak.sha3_256 (Bytes.make 5 (Char.chr i))) in
  check_modes "hash2_pairs" (fun () ->
      String.concat "" (Array.to_list (Keccak.hash2_pairs level)))

let test_hash_matrix_cols () =
  let rng = Rng.create 0xC015L in
  List.iter
    (fun (rows, cols) ->
      let flat = Fv.create (rows * cols) in
      random_fill rng flat;
      check_modes
        (Printf.sprintf "hash_matrix_cols %dx%d" rows cols)
        (fun () ->
          String.concat "" (Array.to_list (Keccak.hash_matrix_cols ~rows ~cols flat))))
    [ (5, 3); (17, 4); (40, 13) ]

(* In-place permutation at arbitrary (including unaligned) lane offsets in a
   larger state bank: result and every untouched neighbour checked against a
   snapshot + the public 25-lane oracle. *)
let test_f1600_off_torture () =
  let rng = Rng.create 0xF16L in
  let total = (25 * 4) + 7 in
  let st = Fv.create total in
  random_fill rng st;
  List.iter
    (fun off ->
      List.iter
        (fun m ->
          let snapshot = Fv.copy st in
          let oracle = Array.init 25 (fun i -> Fv.get st (off + i)) in
          Keccak.keccak_f1600 oracle;
          Native.with_mode m (fun () -> Native.f1600_off st off);
          for i = 0 to total - 1 do
            let expected =
              if i >= off && i < off + 25 then oracle.(i - off) else Fv.get snapshot i
            in
            Alcotest.(check int64)
              (Printf.sprintf "f1600_off off=%d lane=%d [%s]" off i
                 (Native.mode_to_string m))
              expected (Fv.get st i)
          done)
        [ Native.Scalar; Native.Simd ])
    [ 0; 7; 25; 52; 75 ]

(* Column sponges driven through irregular absorb chunks (splitting rows at
   non-multiples of the 17-lane rate and columns mid-range) over a
   misaligned sub-view, against the one-shot hash_matrix_cols oracle. *)
let test_col_hash_torture () =
  let rng = Rng.create 0xC01L in
  let rows = 40 and cols = 13 in
  let big = Fv.create ((rows * cols) + 5) in
  random_fill rng big;
  let flat = Fv.sub_view big ~pos:5 ~len:(rows * cols) in
  let expected =
    Native.with_mode Native.Off (fun () -> Keccak.hash_matrix_cols ~rows ~cols flat)
  in
  let splits = [ 0; 1; 4; 16; 17; 18; 34; rows ] in
  List.iter
    (fun m ->
      let digests =
        Native.with_mode m (fun () ->
            let t = Keccak.Col_hash.create cols in
            let rec go = function
              | lo :: (hi :: _ as rest) ->
                Keccak.Col_hash.absorb t flat ~row_stride:cols ~r_lo:lo ~r_hi:hi
                  ~c_lo:0 ~c_hi:5;
                Keccak.Col_hash.absorb t flat ~row_stride:cols ~r_lo:lo ~r_hi:hi
                  ~c_lo:5 ~c_hi:cols;
                go rest
              | _ -> ()
            in
            go splits;
            let out = Array.make cols "" in
            Keccak.Col_hash.finalize t ~total_rows:rows ~c_lo:0 ~c_hi:cols out;
            out)
      in
      Array.iteri
        (fun j d ->
          Alcotest.(check string)
            (Printf.sprintf "col_hash col=%d [%s]" j (Native.mode_to_string m))
            expected.(j) d)
        digests)
    modes

(* --- full-pipeline proof golden ------------------------------------------ *)

let golden_circuit () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 3) in
  let y = Builder.witness b (Gf.of_int 5) in
  let cur = ref x in
  for _ = 1 to 8 do
    cur := Gadgets.mul b !cur y
  done;
  let out = Builder.input b (Builder.value b !cur) in
  Gadgets.assert_equal b (Builder.lc_var !cur) (Builder.lc_var out);
  Builder.finalize b

(* The acceptance pin: proof bytes are identical with the native layer off,
   scalar, and SIMD, for domain counts 1, 2 and 3 — the kernels never leak
   into the transcript. *)
let test_proof_bytes_invariant () =
  let inst, asn = golden_circuit () in
  let prove_bytes mode d =
    Native.with_mode mode (fun () ->
        Pool.with_domains d (fun () ->
            let proof, _ = Spartan.prove Spartan.test_params inst asn in
            Serialize.proof_to_bytes proof))
  in
  let reference = prove_bytes Native.Off 1 in
  List.iter
    (fun d ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "proof bytes domains=%d [%s]" d (Native.mode_to_string m))
            true
            (Bytes.equal reference (prove_bytes m d)))
        modes)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "gl_pow vs Gf.pow + Fermat" `Quick test_gl_pow;
    QCheck_alcotest.to_alcotest prop_elementwise;
    Alcotest.test_case "NTT forward/inverse vs OCaml, all sizes" `Quick test_ntt_equiv;
    Alcotest.test_case "row-batched NTT vs OCaml" `Quick test_ntt_rows_equiv;
    Alcotest.test_case "RS row encode vs OCaml + raw fused stub" `Quick test_rs_encode_equiv;
    Alcotest.test_case "sha3 lengths 0..300 across modes + FIPS" `Quick test_sha3_all_lengths;
    Alcotest.test_case "sha3_x4 vs 4x sha3" `Quick test_sha3_x4;
    Alcotest.test_case "sha3_256_batch mixed/tail" `Quick test_sha3_batch;
    Alcotest.test_case "hash_gf/hash_fv/hash2/pairs across modes" `Quick test_hash_entry_points;
    Alcotest.test_case "hash_matrix_cols across modes" `Quick test_hash_matrix_cols;
    Alcotest.test_case "f1600_off offset torture" `Quick test_f1600_off_torture;
    Alcotest.test_case "Col_hash chunked absorb torture" `Quick test_col_hash_torture;
    Alcotest.test_case "proof bytes invariant: modes x domains" `Quick test_proof_bytes_invariant;
  ]
