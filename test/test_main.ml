let () =
  Alcotest.run "nocap_repro"
    [
      ("parallel", Test_parallel.suite);
      ("vec", Test_vec.suite);
      ("native", Test_native.suite);
      ("field", Test_field.suite);
      ("hash", Test_hash.suite);
      ("ntt", Test_ntt.suite);
      ("poly", Test_poly.suite);
      ("ecc", Test_ecc.suite);
      ("merkle", Test_merkle.suite);
      ("r1cs", Test_r1cs.suite);
      ("sumcheck", Test_sumcheck.suite);
      ("orion", Test_orion.suite);
      ("spartan", Test_spartan.suite);
      ("curve", Test_curve.suite);
      ("nocap", Test_nocap.suite);
      ("analysis", Test_analysis.suite);
      ("workloads", Test_workloads.suite);
      ("perf", Test_perf.suite);
      ("zkdb", Test_zkdb.suite);
      ("extensions", Test_extensions.suite);
      ("multiset+multichip", Test_multiset_multichip.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("lang+spmv", Test_lang_spmv.suite);
      ("memory-check", Test_memory_check.suite);
      ("additions", Test_additions.suite);
      ("aes", Test_aes.suite);
      ("sha256", Test_sha256.suite);
      ("bignum", Test_bignum.suite);
      ("fri", Test_fri.suite);
      ("stark", Test_stark.suite);
      ("grand-product", Test_grand_product.suite);
      ("pcs-engine", Test_pcs.suite);
      ("faults", Test_faults.suite);
      ("stream", Test_stream.suite);
    ]
