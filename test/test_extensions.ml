(* Tests for the extension features built on top of the paper's core:
   GF(p^2), extension-field sumcheck, proof serialization, batched proving,
   instruction streams, and the four-step NTT kernel at the ISA level. *)

module Gf = Zk_field.Gf
module Gf2 = Zk_field.Gf2
module Sumcheck_ext = Zk_sumcheck.Sumcheck_ext
module Spartan = Zk_spartan.Spartan
module Serialize = Zk_spartan.Serialize
module Aggregate = Zk_spartan.Aggregate
module R1cs = Zk_r1cs.R1cs
module Synthetic = Zk_workloads.Synthetic
module Transcript = Zk_hash.Transcript
module Rng = Zk_util.Rng
module Isa = Nocap_model.Isa
module Vm = Nocap_model.Vm
module Streams = Nocap_model.Streams
module Schedule = Nocap_model.Schedule
module Kernels = Nocap_model.Kernels
module Config = Nocap_model.Config

let gf = Alcotest.testable Gf.pp Gf.equal
let gf2 = Alcotest.testable Gf2.pp Gf2.equal

(* --- GF(p^2) --- *)

let test_gf2_nonresidue () =
  (* 7 must be a quadratic non-residue: 7^((p-1)/2) = -1. *)
  let e = Int64.shift_right_logical (Int64.sub Gf.p 1L) 1 in
  Alcotest.check gf "7 is a non-residue" (Gf.neg Gf.one) (Gf.pow (Gf.of_int 7) e);
  Alcotest.check gf2 "phi^2 = 7" (Gf2.of_base (Gf.of_int 7)) (Gf2.square Gf2.phi)

let test_gf2_axioms () =
  let rng = Rng.create 90L in
  for _ = 1 to 50 do
    let x = Gf2.random rng and y = Gf2.random rng and z = Gf2.random rng in
    Alcotest.(check bool) "mul comm" true (Gf2.equal (Gf2.mul x y) (Gf2.mul y x));
    Alcotest.(check bool) "mul assoc" true
      (Gf2.equal (Gf2.mul (Gf2.mul x y) z) (Gf2.mul x (Gf2.mul y z)));
    Alcotest.(check bool) "distributive" true
      (Gf2.equal (Gf2.mul x (Gf2.add y z)) (Gf2.add (Gf2.mul x y) (Gf2.mul x z)));
    if not (Gf2.equal x Gf2.zero) then
      Alcotest.check gf2 "inverse" Gf2.one (Gf2.mul x (Gf2.inv x))
  done

let test_gf2_norm_frobenius () =
  let rng = Rng.create 91L in
  let x = Gf2.random rng and y = Gf2.random rng in
  (* Norm is multiplicative and lands in the base field. *)
  Alcotest.check gf "norm multiplicative" (Gf.mul (Gf2.norm x) (Gf2.norm y))
    (Gf2.norm (Gf2.mul x y));
  Alcotest.check gf2 "x * conj x = norm" (Gf2.of_base (Gf2.norm x))
    (Gf2.mul x (Gf2.conjugate x));
  (* Frobenius is x^p. *)
  let frob_by_pow = Gf2.pow (Gf2.pow x Gf.p) 1L in
  ignore frob_by_pow;
  (* (phi)^p = -phi since phi^(p-1) = 7^((p-1)/2) = -1 *)
  Alcotest.check gf2 "conjugate of phi" (Gf2.neg Gf2.phi) (Gf2.conjugate Gf2.phi)

(* --- extension-field sumcheck --- *)

let test_sumcheck_ext_roundtrip () =
  let rng = Rng.create 92L in
  let l = 6 in
  let tables = Array.init 3 (fun _ -> Array.init (1 lsl l) (fun _ -> Gf.random rng)) in
  let comb v = Gf2.mul v.(0) (Gf2.mul v.(1) v.(2)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to (1 lsl l) - 1 do
      acc := Gf.add !acc (Gf.mul tables.(0).(b) (Gf.mul tables.(1).(b) tables.(2).(b)))
    done;
    !acc
  in
  let pt = Transcript.create "ext-test" in
  let res = Sumcheck_ext.prove pt ~degree:3 ~tables ~comb ~comb_mults:2 ~claim in
  let vt = Transcript.create "ext-test" in
  match Sumcheck_ext.verify vt ~degree:3 ~num_vars:l ~claim res.Sumcheck_ext.proof with
  | Error e -> Alcotest.failf "ext verify failed: %s" e
  | Ok v ->
    Alcotest.(check bool) "final claim matches comb of finals" true
      (Gf2.equal (comb res.Sumcheck_ext.final_values) v.Sumcheck_ext.value);
    (* Final values are the base tables' MLEs at the extension point. *)
    Array.iteri
      (fun j t ->
        Alcotest.(check bool)
          (Printf.sprintf "table %d" j)
          true
          (Gf2.equal (Sumcheck_ext.eval_mle_ext t v.Sumcheck_ext.point)
             res.Sumcheck_ext.final_values.(j)))
      tables

let test_sumcheck_ext_rejects () =
  let rng = Rng.create 93L in
  let l = 4 in
  let tables = [| Array.init (1 lsl l) (fun _ -> Gf.random rng) |] in
  let comb v = v.(0) in
  let claim = Gf.add (Array.fold_left Gf.add Gf.zero tables.(0)) Gf.one in
  let pt = Transcript.create "ext-test" in
  let res = Sumcheck_ext.prove pt ~degree:1 ~tables ~comb ~comb_mults:0 ~claim in
  let vt = Transcript.create "ext-test" in
  match Sumcheck_ext.verify vt ~degree:1 ~num_vars:l ~claim res.Sumcheck_ext.proof with
  | Error _ -> ()
  | Ok v ->
    Alcotest.(check bool) "oracle check fails" false
      (Gf2.equal (Sumcheck_ext.eval_mle_ext tables.(0) v.Sumcheck_ext.point)
         v.Sumcheck_ext.value)

let test_ext_vs_repetition_cost () =
  (* One extension run should cost well under 3 repetition runs. *)
  let rng = Rng.create 94L in
  let l = 8 in
  let tables = Array.init 4 (fun _ -> Array.init (1 lsl l) (fun _ -> Gf.random rng)) in
  let comb2 v = Gf2.mul v.(0) (Gf2.sub (Gf2.mul v.(1) v.(2)) v.(3)) in
  let comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to (1 lsl l) - 1 do
      acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) tables))
    done;
    !acc
  in
  let pt = Transcript.create "ext-cost" in
  let ext = Sumcheck_ext.prove pt ~degree:3 ~tables ~comb:comb2 ~comb_mults:2 ~claim in
  let base_run () =
    let t = Transcript.create "base-cost" in
    (Zk_sumcheck.Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables ~comb ~claim)
      .Zk_sumcheck.Sumcheck.stats
      .Zk_sumcheck.Sumcheck.mults
  in
  let three_reps = 3 * base_run () in
  Alcotest.(check bool)
    (Printf.sprintf "ext (%d) cheaper than 3 repetitions (%d)"
       ext.Sumcheck_ext.base_mults_equivalent three_reps)
    true
    (ext.Sumcheck_ext.base_mults_equivalent < three_reps)

(* --- proof serialization --- *)

let proof_fixture =
  lazy
    (let inst, asn = Synthetic.circuit ~n_constraints:200 ~seed:95L () in
     let proof, _ = Spartan.prove Spartan.test_params inst asn in
     (inst, asn, proof))

let test_serialize_roundtrip () =
  let inst, asn, proof = Lazy.force proof_fixture in
  let bytes = Serialize.proof_to_bytes proof in
  Alcotest.(check int) "size accessor" (Bytes.length bytes) (Serialize.serialized_size proof);
  match Serialize.proof_of_bytes bytes with
  | Error e -> Alcotest.failf "decode failed: %s" (Zk_pcs.Verify_error.to_string e)
  | Ok proof' ->
    (match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof' with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded proof does not verify: %s" (Zk_pcs.Verify_error.to_string e))

let test_serialize_rejects_garbage () =
  let _, _, proof = Lazy.force proof_fixture in
  let bytes = Serialize.proof_to_bytes proof in
  (* Truncation. *)
  (match Serialize.proof_of_bytes (Bytes.sub bytes 0 (Bytes.length bytes / 2)) with
  | Ok _ -> Alcotest.fail "accepted truncated proof"
  | Error _ -> ());
  (* Trailing bytes. *)
  (match Serialize.proof_of_bytes (Bytes.cat bytes (Bytes.make 1 'x')) with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ());
  (* Bad magic. *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 0 'X';
  (match Serialize.proof_of_bytes bad with
  | Ok _ -> Alcotest.fail "accepted bad magic"
  | Error _ -> ());
  (* A non-canonical field element (0xFFFF...FF) after the header. *)
  let bad2 = Bytes.copy bytes in
  let off = 8 + 1 + 32 + 24 + 8 + 8 in
  (* magic, backend tag, root, dims, reps count, first length *)
  Bytes.fill bad2 off 8 '\xff';
  match Serialize.proof_of_bytes bad2 with
  | Ok _ -> Alcotest.fail "accepted non-canonical element"
  | Error _ -> ()

let prop_serialize_random_corruption =
  QCheck.Test.make ~count:30 ~name:"corrupted proofs never verify"
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, byte) ->
      let inst, asn, proof = Lazy.force proof_fixture in
      let bytes = Serialize.proof_to_bytes proof in
      let pos = 8 + (pos_seed * 37 mod (Bytes.length bytes - 8)) in
      let orig = Bytes.get bytes pos in
      let nb = Char.chr (byte land 0xff) in
      if nb = orig then true
      else begin
        let corrupted = Bytes.copy bytes in
        Bytes.set corrupted pos nb;
        match Serialize.proof_of_bytes corrupted with
        | Error _ -> true
        | Ok p -> (
          match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) p with
          | Ok () -> false (* a single flipped byte must never still verify *)
          | Error _ -> true)
      end)

(* --- batched proving --- *)

let batch_fixture k =
  (* Same circuit, different witnesses: vary only the witness values by using
     the same builder program with different seeds would change io; instead
     clone one instance and randomize assignments that still satisfy it:
     we re-generate with the same seed (same circuit) but perturb via scale.
     Simplest sound approach: same seed gives identical structure AND
     identical values, so build k instances from k seeds and assert equal
     structure via the instance digest. *)
  let mk seed = Synthetic.circuit ~n_constraints:150 ~seed () in
  let inst0, _ = mk 1L in
  let assignments =
    Array.init k (fun i ->
        let inst, asn = mk (Int64.of_int (i + 1)) in
        (* Synthetic circuits share structure only for seed-independent
           shapes; enforce by construction below. *)
        ignore inst;
        asn)
  in
  (inst0, assignments)

let test_batch_roundtrip () =
  (* For identical structure across the batch we use the same generator seed
     for the circuit skeleton; Synthetic's constraint pattern depends on the
     seed, so instead build the batch from one instance and reuse its own
     satisfying assignment k times with fresh zk masks: still a valid batch
     (distinct commitments, shared circuit). *)
  let inst, asn = Synthetic.circuit ~n_constraints:150 ~seed:96L () in
  let assignments = Array.init 4 (fun _ -> asn) in
  let proof = Aggregate.prove Spartan.test_params inst assignments in
  let ios = Array.map (R1cs.public_io inst) assignments in
  (match Aggregate.verify Spartan.test_params inst ~ios proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "batch verify failed: %s" (Zk_pcs.Verify_error.to_string e));
  ignore (batch_fixture 2)

let test_batch_distinct_witnesses () =
  (* A real multi-witness batch: the factoring circuit parameterized only by
     public io keeps structure fixed; here, distinct (x, y) pairs with the
     same product circuit shape. *)
  let build x y =
    let b = Zk_r1cs.Builder.create () in
    let vx = Zk_r1cs.Builder.witness b (Gf.of_int x) in
    let vy = Zk_r1cs.Builder.witness b (Gf.of_int y) in
    let out = Zk_r1cs.Builder.input b (Gf.of_int (x * y)) in
    Zk_r1cs.Builder.constrain b
      (Zk_r1cs.Builder.lc_var vx)
      (Zk_r1cs.Builder.lc_var vy)
      (Zk_r1cs.Builder.lc_var out);
    Zk_r1cs.Builder.finalize b
  in
  let inst, asn1 = build 3 5 in
  let _, asn2 = build 4 4 in
  let _, asn3 = build 2 8 in
  (* All three satisfy the same structural instance (product circuit): the
     instances are identical because the constraint pattern is identical. *)
  Array.iter
    (fun asn -> Alcotest.(check bool) "satisfies shared instance" true (R1cs.satisfied inst asn))
    [| asn1; asn2; asn3 |];
  let assignments = [| asn1; asn2; asn3 |] in
  let proof = Aggregate.prove Spartan.test_params inst assignments in
  let ios = Array.map (R1cs.public_io inst) assignments in
  (match Aggregate.verify Spartan.test_params inst ~ios proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "multi-witness batch failed: %s" (Zk_pcs.Verify_error.to_string e));
  (* Forging one instance's public output breaks the whole batch. *)
  ios.(1).(1) <- Gf.of_int 17;
  match Aggregate.verify Spartan.test_params inst ~ios proof with
  | Ok () -> Alcotest.fail "accepted batch with forged io"
  | Error _ -> ()

let test_batch_unsatisfied_rejected () =
  let inst, asn = Synthetic.circuit ~n_constraints:100 ~seed:97L () in
  let bad = { R1cs.w = Array.copy asn.R1cs.w; io = asn.R1cs.io } in
  bad.R1cs.w.(0) <- Gf.add bad.R1cs.w.(0) Gf.one;
  Alcotest.(check bool) "prove raises" true
    (try
       ignore (Aggregate.prove Spartan.test_params inst [| asn; bad |]);
       false
     with Invalid_argument _ -> true)

let test_batch_amortization () =
  (* The batch proof must be much smaller than k separate proofs: sumchecks
     and challenge schedules are shared. *)
  let inst, asn = Synthetic.circuit ~n_constraints:400 ~seed:98L () in
  let k = 6 in
  let batch = Aggregate.prove Spartan.test_params inst (Array.make k asn) in
  let single, _ = Spartan.prove Spartan.test_params inst asn in
  let batch_bytes = Aggregate.proof_size_bytes Spartan.test_params batch in
  let separate_bytes = k * Spartan.proof_size_bytes Spartan.test_params single in
  (* Proof bytes are dominated by the per-instance Orion openings, but the
     shared challenge schedule must still save the (k-1) duplicated sumcheck
     transcripts... *)
  Alcotest.(check bool)
    (Printf.sprintf "batch %d < separate %d" batch_bytes separate_bytes)
    true (batch_bytes < separate_bytes);
  (* ...and structurally there is exactly one pair of sumchecks per
     repetition regardless of k (the amortization that matters for prover
     time: one shared M-table instead of k transpose-SpMVs). *)
  let rep = batch.Aggregate.reps.(0) in
  Alcotest.(check int) "one sc1" inst.R1cs.log_size
    (Array.length rep.Aggregate.sc1.Zk_sumcheck.Sumcheck.round_polys);
  Alcotest.(check int) "k openings" k (Array.length rep.Aggregate.w_opens)

(* --- instruction streams --- *)

let test_streams_preserve_schedule () =
  let k = 2048 in
  let program = (Kernels.sumcheck_round ~vector_len:k).Kernels.program in
  let sched = Schedule.run Config.default ~vector_len:k program in
  let streams = Streams.split Config.default ~vector_len:k program in
  Alcotest.(check int) "makespan preserved" sched.Schedule.makespan streams.Streams.makespan;
  (* Replay recovers exactly the scheduled issue cycles of every effectful
     instruction. *)
  let scheduled =
    List.filter_map
      (fun (s : Schedule.slot) ->
        match s.Schedule.instr with
        | Isa.Delay _ -> None
        | i -> Some (i, s.Schedule.issue))
      sched.Schedule.slots
    |> List.sort compare
  in
  let replayed = Streams.replay streams |> List.sort compare in
  Alcotest.(check int) "same instruction count" (List.length scheduled) (List.length replayed);
  List.iter2
    (fun (i1, c1) (i2, c2) ->
      Alcotest.(check bool) "same instruction" true (i1 = i2);
      Alcotest.(check int) "same issue cycle" c1 c2)
    scheduled replayed

let test_streams_code_size () =
  let k = 2048 in
  let program = (Kernels.sumcheck_round ~vector_len:k).Kernels.program in
  let streams = Streams.split Config.default ~vector_len:k program in
  Alcotest.(check bool) "streams smaller than VLIW words" true
    (Streams.instruction_count streams < Streams.vliw_word_count streams);
  (* Every stream holds instructions of its own FU only (or delays). *)
  List.iter
    (fun (s : Streams.stream) ->
      List.iter
        (fun instr ->
          match instr with
          | Isa.Delay _ -> ()
          | i ->
            Alcotest.(check bool) "instruction on its FU" true (Isa.which_fu i = s.Streams.fu))
        s.Streams.ops)
    streams.Streams.streams

(* --- four-step NTT kernel --- *)

let test_four_step_kernel () =
  List.iter
    (fun (rows, cols) ->
      let k = rows * cols in
      let kern, twiddles = Kernels.four_step_ntt ~rows ~cols in
      let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:4 in
      let rng = Rng.create 99L in
      let input = Array.init k (fun _ -> Gf.random rng) in
      Vm.write_mem vm 0 input;
      Vm.write_mem vm 1 twiddles;
      Vm.exec vm kern.Kernels.program;
      let out = Vm.read_mem vm kern.Kernels.output_slot in
      let expected =
        Zk_ntt.Ntt.Gf_ntt.forward_copy (Zk_ntt.Ntt.Gf_ntt.plan k) input
      in
      Array.iteri
        (fun i e ->
          Alcotest.check gf (Printf.sprintf "%dx%d [%d]" rows cols i) e out.(i))
        expected)
    [ (4, 4); (8, 16); (16, 8); (32, 32) ]

let suite =
  [
    Alcotest.test_case "GF(p^2) non-residue" `Quick test_gf2_nonresidue;
    Alcotest.test_case "GF(p^2) axioms" `Quick test_gf2_axioms;
    Alcotest.test_case "GF(p^2) norm/frobenius" `Quick test_gf2_norm_frobenius;
    Alcotest.test_case "ext sumcheck roundtrip" `Quick test_sumcheck_ext_roundtrip;
    Alcotest.test_case "ext sumcheck rejects" `Quick test_sumcheck_ext_rejects;
    Alcotest.test_case "ext vs repetition cost" `Quick test_ext_vs_repetition_cost;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
    Alcotest.test_case "batch distinct witnesses" `Quick test_batch_distinct_witnesses;
    Alcotest.test_case "batch unsatisfied rejected" `Quick test_batch_unsatisfied_rejected;
    Alcotest.test_case "batch amortization" `Quick test_batch_amortization;
    Alcotest.test_case "streams preserve schedule" `Quick test_streams_preserve_schedule;
    Alcotest.test_case "streams code size" `Quick test_streams_code_size;
    Alcotest.test_case "four-step NTT kernel" `Quick test_four_step_kernel;
    QCheck_alcotest.to_alcotest prop_serialize_random_corruption;
  ]
