(* Parallel runtime tests: pool torture (nesting, exceptions, degenerate
   sizes, work-stealing under skew, park/unpark races) plus QCheck
   parallel/serial equivalence — every converted hot path must produce
   byte-identical results for domain counts 1, 2, and N, and for every
   grain including ones larger than the whole range. *)

module Pool = Nocap_parallel.Pool
module Gf = Zk_field.Gf
module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Merkle = Zk_merkle.Merkle
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Reed_solomon = Zk_ecc.Reed_solomon
module Expander = Zk_ecc.Expander
module Sumcheck = Zk_sumcheck.Sumcheck
module Orion = Zk_orion.Orion
module Msm = Zk_curve.Msm
module G1 = Zk_curve.G1
module Fr = Zk_field.Fr_bls
module Rng = Zk_util.Rng

(* Domain counts every equivalence property sweeps. The machine may have
   any core count; correctness must not depend on it. *)
let domain_counts = [ 1; 2; 3 ]

let with_each_domain_count f = List.map (fun d -> Pool.with_domains d (fun () -> f d)) domain_counts

(* --- pool torture ------------------------------------------------------- *)

let test_degenerate () =
  Pool.with_domains 3 (fun () ->
      Pool.parallel_for ~n:0 (fun _ -> failwith "must not run");
      Pool.run ~n:(-5) (fun _ _ -> failwith "must not run");
      Alcotest.(check (array int)) "init 0" [||] (Pool.parallel_init 0 (fun i -> i));
      Alcotest.(check (array int)) "map empty" [||] (Pool.parallel_map (fun x -> x) [||]);
      Alcotest.(check (array int)) "init 1" [| 7 |] (Pool.parallel_init 1 (fun _ -> 7));
      let hits = ref 0 in
      Pool.parallel_for ~grain:1 ~n:1 (fun _ -> incr hits);
      Alcotest.(check int) "size-1 input runs once" 1 !hits)

let test_init_matches_serial () =
  let expected = Array.init 1000 (fun i -> (i * i) + 3) in
  with_each_domain_count (fun _ ->
      Pool.parallel_init ~grain:1 1000 (fun i -> (i * i) + 3))
  |> List.iter (fun got -> Alcotest.(check (array int)) "parallel_init" expected got)

let test_nested () =
  Pool.with_domains 3 (fun () ->
      let got =
        Pool.parallel_init ~grain:1 16 (fun i ->
            (* Nested submission from inside a worker must run serially and
               still be correct. *)
            let inner = Pool.parallel_init ~grain:1 8 (fun j -> (i * 8) + j) in
            Array.fold_left ( + ) 0 inner)
      in
      let expected = Array.init 16 (fun i -> Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 8) + j))) in
      Alcotest.(check (array int)) "nested" expected got)

exception Boom of int

let test_exception_propagation () =
  Pool.with_domains 3 (fun () ->
      (match Pool.parallel_for ~grain:1 ~n:100 (fun i -> if i = 57 then raise (Boom i)) with
      | () -> Alcotest.fail "expected exception"
      | exception Boom 57 -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
      (* The pool must stay usable after a failed task. *)
      let a = Pool.parallel_init ~grain:1 64 (fun i -> 2 * i) in
      Alcotest.(check (array int)) "pool alive after exn" (Array.init 64 (fun i -> 2 * i)) a)

(* Every index raises while stealing is active (grain 1 over many indices
   forces workers to trade chunks): the caller must still see exactly one
   exception (with its backtrace preserved), and the pool must not wedge —
   subsequent submissions run on all workers. *)
let test_exception_storm_surfaces_once () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace prev)
    (fun () ->
      Pool.with_domains 3 (fun () ->
          let surfaced = ref 0 in
          (match Pool.parallel_for ~grain:1 ~n:64 (fun i -> raise (Boom i)) with
          | () -> Alcotest.fail "expected exception"
          | exception Boom _ ->
            incr surfaced;
            let bt = Printexc.get_raw_backtrace () in
            Alcotest.(check bool)
              "backtrace preserved across the pool boundary" true
              (Printexc.raw_backtrace_length bt > 0)
          | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
          Alcotest.(check int) "exactly one exception surfaced" 1 !surfaced;
          let a = Pool.parallel_init ~grain:1 128 (fun i -> i + 1) in
          Alcotest.(check (array int))
            "pool alive after exception storm"
            (Array.init 128 (fun i -> i + 1))
            a))

let test_fold_chunks () =
  List.iter
    (fun chunk ->
      with_each_domain_count (fun _ ->
          Pool.fold_chunks ~chunk ~grain:1 ~n:1000 ~init:0
            ~body:(fun lo hi ->
              let s = ref 0 in
              for i = lo to hi - 1 do
                s := !s + i
              done;
              !s)
            ~combine:( + ) ())
      |> List.iter (fun got -> Alcotest.(check int) "fold sum" (1000 * 999 / 2) got))
    [ 1; 7; 64; 1000; 4096 ]

let test_with_domains_restores () =
  let before = Pool.default_domains () in
  (try Pool.with_domains 2 (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "default restored after exn" before (Pool.default_domains ())

(* Park/unpark races: with the spin budget forced to zero every worker
   parks the instant it runs out of work, so back-to-back submissions
   exercise the epoch/parked handshake hundreds of times. A missed wakeup
   here shows up as a hang (alcotest timeout) or a lost index. *)
let test_park_unpark_races () =
  let prev = Pool.spin_us () in
  Pool.set_spin_us 0;
  Fun.protect
    ~finally:(fun () -> Pool.set_spin_us prev)
    (fun () ->
      Pool.with_domains 4 (fun () ->
          for round = 1 to 300 do
            let n = 1 + (round mod 97) in
            let hits = Array.make n 0 in
            Pool.parallel_for ~grain:1 ~n (fun i ->
                hits.(i) <- hits.(i) + 1);
            Array.iteri
              (fun i h ->
                if h <> 1 then
                  Alcotest.failf "round %d: index %d ran %d times" round i h)
              hits
          done))

(* Work-stealing under skew: a few indices carry almost all the work, so a
   static split strands most of it on one worker and only stealing can
   rebalance. Every index must run exactly once regardless. *)
let test_stealing_skewed_work () =
  Pool.with_domains 4 (fun () ->
      let n = 256 in
      let hits = Array.make n 0 in
      let sink = ref 0 in
      Pool.parallel_for ~grain:1 ~n (fun i ->
          hits.(i) <- hits.(i) + 1;
          (* Indices 0..3 busy-loop ~1000x longer than the rest. *)
          let iters = if i < 4 then 100_000 else 100 in
          let acc = ref 0 in
          for k = 1 to iters do
            acc := !acc + (k land 7)
          done;
          sink := !sink + (!acc land 1));
      Array.iteri
        (fun i h -> if h <> 1 then Alcotest.failf "skew: index %d ran %d times" i h)
        hits)

(* QCheck stealing torture: random n (including 0 and 1), random grain
   (including grains larger than n, which must hit the serial fallback),
   random per-index work skew, random domain count. Coverage is checked
   with per-index counters — exactly-once execution is the whole
   correctness contract of the deque/steal protocol. *)
let qcheck ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let qcheck_stealing_torture =
  qcheck ~count:40 "work-stealing covers every index exactly once"
    QCheck.(
      make
        Gen.(
          quad (int_range 0 700) (int_range 1 2000) (int_range 1 4)
            (int_range 0 1000)))
    (fun (n, grain, domains, seed) ->
      Pool.with_domains domains (fun () ->
          let hits = Array.make (max 1 n) 0 in
          let sink = ref 0 in
          Pool.parallel_for ~grain ~n (fun i ->
              hits.(i) <- hits.(i) + 1;
              (* Deterministic skew derived from the seed: some indices are
                 ~100x heavier, forcing thieves onto slow victims. *)
              let iters = if (i + seed) mod 13 = 0 then 5_000 else 50 in
              let acc = ref 0 in
              for k = 1 to iters do
                acc := !acc + (k land 3)
              done;
              sink := !sink + (!acc land 1));
          let ok = ref true in
          for i = 0 to n - 1 do
            if hits.(i) <> 1 then ok := false
          done;
          !ok))

(* Grain property: for any grain (1 .. far beyond n, where the serial
   crossover kicks in) the observable result is identical. Uses a
   value-producing kernel (parallel_init) so a dropped or doubled index
   changes bytes, not just counts. *)
let qcheck_grain_equivalence =
  qcheck ~count:40 "results identical for every grain incl. serial fallback"
    QCheck.(make Gen.(triple (int_range 0 500) (int_range 1 4000) (int_range 1 4)))
    (fun (n, grain, domains) ->
      let expected = Array.init n (fun i -> (i * 31) lxor (i lsr 2)) in
      let got =
        Pool.with_domains domains (fun () ->
            Pool.parallel_init ~grain n (fun i -> (i * 31) lxor (i lsr 2)))
      in
      got = expected)

(* --- parallel/serial equivalence (QCheck) ------------------------------ *)

let gf_array_gen log_n =
  QCheck.Gen.(
    map
      (fun seed ->
        let rng = Rng.create (Int64.of_int seed) in
        Array.init (1 lsl log_n) (fun _ -> Gf.random rng))
      int)

let qcheck_merkle =
  qcheck "merkle roots identical across domain counts"
    QCheck.(make Gen.(pair (int_range 1 200) int))
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let leaves =
        Array.init n (fun _ -> Keccak.sha3_256_string (Int64.to_string (Rng.next rng)))
      in
      let serial = Merkle.root (Merkle.build_serial leaves) in
      with_each_domain_count (fun _ -> Merkle.root (Merkle.build leaves))
      |> List.for_all (String.equal serial))

let qcheck_ntt_rows =
  qcheck "row-wise NTT identical across domain counts"
    QCheck.(make (gf_array_gen 9))
    (fun flat ->
      let rows n = Array.init n (fun r -> Array.sub flat (r * 32) 32) in
      let plan = Ntt.plan 32 in
      let serial = rows 16 in
      Array.iter (Ntt.forward plan) serial;
      with_each_domain_count (fun _ ->
          let m = rows 16 in
          Ntt.forward_rows plan m;
          m)
      |> List.for_all (( = ) serial))

let qcheck_four_step =
  qcheck "four-step NTT = flat NTT across domain counts"
    QCheck.(make (gf_array_gen 8))
    (fun a ->
      let flat = Ntt.forward_copy (Ntt.plan 256) a in
      with_each_domain_count (fun _ -> Ntt.four_step_forward ~rows:16 ~cols:16 a)
      |> List.for_all (( = ) flat))

let qcheck_codes =
  qcheck "codewords identical across domain counts"
    QCheck.(make (gf_array_gen 8))
    (fun flat ->
      let rows = Array.init 4 (fun r -> Array.sub flat (r * 64) 64) in
      List.for_all
        (fun ((module Code : Zk_ecc.Linear_code.S)) ->
          let serial = Array.map Code.encode rows in
          with_each_domain_count (fun _ -> Code.encode_batch rows)
          |> List.for_all (( = ) serial))
        [ (module Reed_solomon); (module Expander) ])

let sumcheck_comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3))

let qcheck_sumcheck =
  qcheck "sumcheck transcripts identical across domain counts"
    QCheck.(make (gf_array_gen 8))
    (fun flat ->
      let tables = Array.init 4 (fun j -> Array.sub flat (j * 64) 64) in
      let claim =
        let acc = ref Gf.zero in
        for b = 0 to 63 do
          acc := Gf.add !acc (sumcheck_comb (Array.map (fun t -> t.(b)) tables))
        done;
        !acc
      in
      let run () =
        let t = Transcript.create "test-parallel" in
        let r =
          Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables ~comb:sumcheck_comb ~claim
        in
        (* The post-proof challenge pins the entire transcript state. *)
        (r.Sumcheck.proof, r.Sumcheck.challenges, r.Sumcheck.final_values,
         Transcript.challenge_gf t "final")
      in
      let serial = Pool.with_domains 1 run in
      with_each_domain_count (fun _ -> run ()) |> List.for_all (( = ) serial))

let orion_params =
  { Orion.rows = 16; code = (module Reed_solomon); proximity_count = 2; zk = true }

let qcheck_orion =
  qcheck ~count:5 "orion proofs identical across domain counts"
    QCheck.(make Gen.(pair (gf_array_gen 8) int))
    (fun (table, seed) ->
      let run () =
        let rng = Rng.create (Int64.of_int seed) in
        let committed, cm = Orion.commit orion_params rng table in
        let t = Transcript.create "test-parallel-orion" in
        Orion.absorb_commitment t cm;
        let point = Transcript.challenge_gf_vec t "point" cm.Orion.num_vars in
        let value, proof = Orion.prove_eval orion_params committed t point in
        (cm, value, proof)
      in
      let serial = Pool.with_domains 1 run in
      let ok = with_each_domain_count (fun _ -> run ()) |> List.for_all (( = ) serial) in
      (* And the proof must still verify. *)
      let cm, value, proof = serial in
      let t = Transcript.create "test-parallel-orion" in
      Orion.absorb_commitment t cm;
      let point = Transcript.challenge_gf_vec t "point" cm.Orion.num_vars in
      ok
      && Result.is_ok (Orion.verify_eval orion_params cm t point value proof))

let qcheck_msm =
  qcheck ~count:5 "pippenger identical across domain counts"
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let n = 16 + Rng.int rng 17 in
      let scalars = Array.init n (fun _ -> Fr.random rng) in
      let points = Array.init n (fun _ -> G1.random rng) in
      let serial = Msm.pippenger_serial scalars points in
      G1.equal serial (Msm.naive scalars points)
      && with_each_domain_count (fun _ -> Msm.pippenger scalars points)
         |> List.for_all (G1.equal serial))

let suite =
  [
    Alcotest.test_case "degenerate inputs" `Quick test_degenerate;
    Alcotest.test_case "parallel_init matches serial" `Quick test_init_matches_serial;
    Alcotest.test_case "nested submissions" `Quick test_nested;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "exception storm surfaces once" `Quick
      test_exception_storm_surfaces_once;
    Alcotest.test_case "fold_chunks determinism" `Quick test_fold_chunks;
    Alcotest.test_case "with_domains restores" `Quick test_with_domains_restores;
    Alcotest.test_case "park/unpark races under repeated submit" `Quick
      test_park_unpark_races;
    Alcotest.test_case "stealing rebalances skewed work" `Quick
      test_stealing_skewed_work;
    qcheck_stealing_torture;
    qcheck_grain_equivalence;
    qcheck_merkle;
    qcheck_ntt_rows;
    qcheck_four_step;
    qcheck_codes;
    qcheck_sumcheck;
    qcheck_orion;
    qcheck_msm;
  ]
