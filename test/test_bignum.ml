(* Multi-limb bignum gadgets: arithmetic against int64 references, modular
   reduction, and a 64-bit-modulus RSA-style exponentiation through the
   SNARK. *)

module Gf = Zk_field.Gf
module Bignum = Zk_r1cs.Bignum
module Builder = Zk_r1cs.Builder
module R1cs = Zk_r1cs.R1cs
module Spartan = Zk_spartan.Spartan
module Rng = Zk_util.Rng

let test_roundtrip () =
  let b = Builder.create () in
  let x = Bignum.of_int64 b ~secret:true ~limbs:4 0x1234_5678_9abc_def0L in
  Alcotest.(check int64) "roundtrip" 0x1234_5678_9abc_def0L (Bignum.to_int64 b x);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Alcotest.(check bool) "overflow rejected" true
    (try
       let b2 = Builder.create () in
       ignore (Bignum.of_int64 b2 ~secret:true ~limbs:1 70000L);
       false
     with Invalid_argument _ -> true)

let test_mul_add () =
  let b = Builder.create () in
  let cases = [ (0xffffL, 0xffffL); (12345L, 67890L); (0L, 999L); (0xdeadbeefL, 3L) ] in
  List.iter
    (fun (xv, yv) ->
      let x = Bignum.of_int64 b ~secret:true ~limbs:2 xv in
      let y = Bignum.of_int64 b ~secret:true ~limbs:2 yv in
      let p = Bignum.mul b x y in
      Alcotest.(check int64)
        (Printf.sprintf "%Lu * %Lu" xv yv)
        (Int64.mul xv yv) (Bignum.to_int64 b p);
      let s = Bignum.add b x y in
      Alcotest.(check int64)
        (Printf.sprintf "%Lu + %Lu" xv yv)
        (Int64.add xv yv) (Bignum.to_int64 b s))
    cases;
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_less_than_and_mod () =
  let b = Builder.create () in
  let x = Bignum.of_int64 b ~secret:true ~limbs:4 987654321L in
  let m = Bignum.constant b ~limbs:4 1000003L in
  let lt = Bignum.less_than b m x in
  Alcotest.(check bool) "m < x" true (Gf.equal (Builder.value b lt) Gf.one);
  let r = Bignum.mod_reduce b x ~modulus:m in
  Alcotest.(check int64) "remainder" (Int64.rem 987654321L 1000003L) (Bignum.to_int64 b r);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let modexp_ref x e m =
  (* Reference over int64 via repeated multiplication with 128-bit care:
     keep operands below 2^31 so products fit. *)
  let rec go acc base e =
    if e = 0 then acc
    else
      go
        (if e land 1 = 1 then Int64.rem (Int64.mul acc base) m else acc)
        (Int64.rem (Int64.mul base base) m)
        (e lsr 1)
  in
  go 1L (Int64.rem x m) e

let test_modexp_31bit () =
  (* A 31-bit modulus keeps the int64 reference exact while the circuit does
     full 64-bit-capable limb arithmetic. *)
  let m = 0x7FFF_FFEDL (* prime-ish 31-bit *) in
  let b = Builder.create () in
  let base = Bignum.of_int64 b ~secret:true ~limbs:2 123456789L in
  let modulus = Bignum.constant b ~limbs:2 m in
  let out = Bignum.modexp b ~base ~exponent:17 ~modulus in
  Alcotest.(check int64) "x^17 mod m" (modexp_ref 123456789L 17 m) (Bignum.to_int64 b out);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Printf.printf "bignum modexp(e=17, 32-bit modulus): %d constraints\n%!"
    inst.R1cs.num_constraints

let test_rsa_style_proof () =
  (* Prove knowledge of x with x^17 = y (mod m), m a 31-bit modulus, through
     the full SNARK; tampering with the public y must fail. *)
  let m = 0x7FFF_FFEDL in
  let xv = 987654321L in
  let b = Builder.create () in
  let base = Bignum.of_int64 b ~secret:true ~limbs:2 xv in
  let modulus = Bignum.constant b ~limbs:2 m in
  let out = Bignum.modexp b ~base ~exponent:17 ~modulus in
  (* Reveal the result limbs. *)
  Array.iter
    (fun w ->
      let pub = Builder.input b (Builder.value b w) in
      Zk_r1cs.Gadgets.assert_equal b (Builder.lc_var w) (Builder.lc_var pub))
    out.Bignum.limbs;
  let inst, asn = Builder.finalize b in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  (match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rsa-style proof failed: %s" (Zk_pcs.Verify_error.to_string e));
  let io = R1cs.public_io inst asn in
  io.(Array.length io - 2) <- Gf.add io.(Array.length io - 2) Gf.one;
  match Spartan.verify Spartan.test_params inst ~io proof with
  | Ok () -> Alcotest.fail "accepted wrong exponentiation result"
  | Error _ -> ()

let prop_mul_random =
  QCheck.Test.make ~count:40 ~name:"bignum mul matches int64"
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (a, c) ->
      let b = Builder.create () in
      let x = Bignum.of_int64 b ~secret:true ~limbs:2 (Int64.of_int a) in
      let y = Bignum.of_int64 b ~secret:true ~limbs:2 (Int64.of_int c) in
      let p = Bignum.mul b x y in
      let inst, asn = Builder.finalize b in
      Bignum.to_int64 b p = Int64.of_int (a * c) && R1cs.satisfied inst asn)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "mul and add" `Quick test_mul_add;
    Alcotest.test_case "less_than and mod" `Quick test_less_than_and_mod;
    Alcotest.test_case "modexp 31-bit modulus" `Quick test_modexp_31bit;
    Alcotest.test_case "RSA-style proof" `Quick test_rsa_style_proof;
    QCheck_alcotest.to_alcotest prop_mul_random;
  ]
