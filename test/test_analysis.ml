(* Static-analysis tests: the Lint program linter, the Check schedule
   checker (used as an oracle against injected mutations), and the fuzz
   property tying the linter's "clean" verdict to VM executability and
   Isa.reads/writes to the registers the VM actually touches. *)

module Config = Nocap_model.Config
module Isa = Nocap_model.Isa
module Vm = Nocap_model.Vm
module Schedule = Nocap_model.Schedule
module Kernels = Nocap_model.Kernels
module Spmv_compile = Nocap_model.Spmv_compile
module Diag = Nocap_analysis.Diag
module Lint = Nocap_analysis.Lint
module Check = Nocap_analysis.Check
module Corpus = Nocap_analysis.Corpus
module Circuit_lint = Nocap_analysis.Circuit_lint
module Circuit_report = Nocap_analysis.Circuit_report
module Circuit_mutate = Nocap_analysis.Circuit_mutate
module Circuit_corpus = Nocap_analysis.Circuit_corpus
module Structure = Zk_perf.Structure
module Gf = Zk_field.Gf
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Synthetic = Zk_workloads.Synthetic
module Litmus_circuit = Zk_workloads.Litmus_circuit
module Json_min = Zk_util.Json_min
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let check_rule msg rule diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expect %s in [%s]" msg rule
       (String.concat "; " (List.map Diag.to_string diags)))
    true (Diag.has_rule rule diags)

(* --- linter over the real program generators --- *)

let test_kernels_clean () =
  List.iter
    (fun k ->
      List.iter
        (fun (v : Corpus.verdict) ->
          let name = Printf.sprintf "%s k=%d" v.Corpus.entry.Corpus.name k in
          Alcotest.(check bool)
            (name ^ " clean: " ^ Corpus.summary v)
            true (Corpus.clean v);
          (* Hand-written kernels should be warning-free too. *)
          Alcotest.(check (list string))
            (name ^ " warning-free")
            []
            (List.map Diag.to_string (Diag.warnings v.Corpus.lint.Lint.diags)))
        (Corpus.verify_all Config.default (Corpus.kernels ~vector_len:k)))
    [ 8; 64; 512 ]

let test_spmv_programs_clean () =
  let k = 8 in
  let rng = Rng.create 11L in
  for trial = 0 to 4 do
    let n = k * (1 + Rng.int rng 3) in
    let nnz = 1 + Rng.int rng (2 * n) in
    let entries =
      List.init nnz (fun _ ->
          (Rng.int rng n, Rng.int rng n, Gf.of_int (1 + Rng.int rng 1000)))
    in
    let m = Sparse.of_entries ~nrows:n ~ncols:n entries in
    let name = Printf.sprintf "spmv-%d" trial in
    let v = Corpus.verify Config.default (Corpus.of_spmv ~name ~vector_len:k m) in
    Alcotest.(check bool) (name ^ " clean: " ^ Corpus.summary v) true (Corpus.clean v);
    (* The linted program really computes A x on the VM. *)
    let sched = Spmv_compile.compile ~vector_len:k m in
    let vm =
      Vm.create ~vector_len:k ~num_regs:8
        ~mem_slots:(Lint.min_mem_slots sched.Spmv_compile.program)
    in
    let x = Array.init n (fun _ -> Gf.random rng) in
    let y = Spmv_compile.run vm sched x in
    let expected = Sparse.spmv m x in
    Array.iteri
      (fun i v -> Alcotest.check gf (Printf.sprintf "%s y.(%d)" name i) expected.(i) v)
      y
  done

let test_workload_programs_clean () =
  (* The benchmark workload generators' R1CS matrices, compiled by
     Spmv_compile, pass the linter and the schedule checker. *)
  let k = 64 in
  let b = Zk_workloads.Benchmarks.litmus in
  let inst, _ = b.Zk_workloads.Benchmarks.generate 1 in
  let pad m =
    let n = max (R1cs.size inst) k in
    Sparse.pad_to m ~nrows:n ~ncols:n
  in
  List.iter
    (fun (name, m) ->
      let v = Corpus.verify Config.default (Corpus.of_spmv ~name ~vector_len:k (pad m)) in
      Alcotest.(check bool) (name ^ " clean: " ^ Corpus.summary v) true (Corpus.clean v))
    [ ("litmus-A", inst.R1cs.a); ("litmus-B", inst.R1cs.b); ("litmus-C", inst.R1cs.c) ]

(* --- injected program mutations --- *)

let lint8 ?num_regs ?mem_slots p = (Lint.lint ?num_regs ?mem_slots ~vector_len:8 p).Lint.diags

let test_lint_detects () =
  let k = 8 in
  (* Uninitialized read: r0/r1 never written. *)
  check_rule "uninit" "uninitialized-read" (lint8 [ Isa.Vadd (2, 0, 1) ]);
  (* Register budget. *)
  check_rule "budget" "bad-register" (lint8 ~num_regs:8 [ Isa.Vsplat (9, Gf.one) ]);
  check_rule "negative reg" "bad-register" (lint8 [ Isa.Vsplat (-1, Gf.one) ]);
  (* Memory-slot bound. *)
  check_rule "slot" "bad-slot" (lint8 ~mem_slots:4 [ Isa.Vload (0, 5) ]);
  (* Permutation shape and range. *)
  check_rule "perm length" "bad-permutation"
    (lint8 [ Isa.Vload (0, 0); Isa.Vshuffle (1, 0, Array.make 4 0) ]);
  let oor = Array.init k (fun i -> i) in
  oor.(3) <- k;
  check_rule "perm range" "bad-permutation"
    (lint8 [ Isa.Vload (0, 0); Isa.Vshuffle (1, 0, oor) ]);
  (* A gather is a warning, not an error. *)
  let gather_diags =
    lint8
      [ Isa.Vload (0, 0); Isa.Vshuffle (1, 0, Array.make k 0); Isa.Vstore (1, 1) ]
  in
  check_rule "gather" "non-bijective-shuffle" gather_diags;
  Alcotest.(check bool) "gather is still clean" true (Diag.is_clean gather_diags);
  (* Rotate/interleave/tile/delay shapes. *)
  check_rule "rotate" "bad-rotate" (lint8 [ Isa.Vload (0, 0); Isa.Vrotate (1, 0, -1) ]);
  check_rule "rotate wrap" "rotate-wraps"
    (lint8 [ Isa.Vload (0, 0); Isa.Vrotate (1, 0, k) ]);
  check_rule "interleave" "bad-interleave"
    (lint8 [ Isa.Vload (0, 0); Isa.Vinterleave (1, 0, 3) ]);
  check_rule "tile" "bad-tile"
    (lint8 [ Isa.Vload (0, 0); Isa.Vntt_tiled { dst = 1; src = 0; tile = 3; inverse = false } ]);
  check_rule "delay" "bad-delay" (lint8 [ Isa.Delay (-2) ]);
  (* Dead code. *)
  check_rule "dead write" "dead-write"
    (lint8 [ Isa.Vsplat (0, Gf.one); Isa.Vsplat (0, Gf.two); Isa.Vstore (0, 0) ]);
  check_rule "dead store" "dead-store"
    (lint8 [ Isa.Vsplat (0, Gf.one); Isa.Vstore (0, 0); Isa.Vstore (0, 0) ]);
  check_rule "alias" "input-output-alias" (lint8 [ Isa.Vload (0, 0); Isa.Vstore (0, 0) ]);
  (* Vector length itself. *)
  check_rule "vector len" "bad-vector-len"
    (Lint.lint ~vector_len:6 [ Isa.Vsplat (0, Gf.one) ]).Lint.diags

let test_pressure_accounting () =
  let r = Lint.lint ~vector_len:64 Kernels.elementwise_mul.Kernels.program in
  Alcotest.(check int) "min registers" 3 (Lint.min_registers r);
  Alcotest.(check int) "regs used" 3 r.Lint.pressure.Lint.regs_used;
  Alcotest.(check int) "peak live" 2 r.Lint.pressure.Lint.peak_live;
  Alcotest.(check (list int)) "inputs" [ 0; 1 ] r.Lint.input_slots;
  Alcotest.(check (list int)) "outputs" [ 2 ] r.Lint.output_slots;
  Alcotest.(check int) "mem slots" 3
    (Lint.min_mem_slots Kernels.elementwise_mul.Kernels.program);
  let r = Lint.lint ~vector_len:64 (Kernels.sumcheck_round ~vector_len:64).Kernels.program in
  Alcotest.(check int) "sumcheck registers" 8 (Lint.min_registers r);
  Alcotest.(check bool) "sumcheck peak within file" true
    (r.Lint.pressure.Lint.peak_live >= 3 && r.Lint.pressure.Lint.peak_live <= 8)

(* --- schedule checker as an oracle --- *)

let test_schedules_clean () =
  List.iter
    (fun k ->
      List.iter
        (fun (v : Corpus.verdict) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s k=%d schedule clean: %s" v.Corpus.entry.Corpus.name k
               (Check.summary v.Corpus.check))
            true
            (Check.is_clean v.Corpus.check);
          (* The dependence critical path lower-bounds any legal schedule. *)
          Alcotest.(check bool) "makespan >= critical path" true
            (v.Corpus.check.Check.makespan >= v.Corpus.check.Check.critical_path))
        (Corpus.verify_all Config.default (Corpus.kernels ~vector_len:k)))
    [ 64; 2048 ]

let mutate_slot i f (s : Schedule.schedule) =
  {
    s with
    Schedule.slots =
      List.mapi (fun j slot -> if i = j then f slot else slot) s.Schedule.slots;
  }

let test_check_oracle () =
  let k = 64 in
  let config = Config.default in
  let program = (Kernels.sumcheck_round ~vector_len:k).Kernels.program in
  let sched = Schedule.run config ~vector_len:k program in
  let diags s = (Check.check config ~vector_len:k program s).Check.diags in
  Alcotest.(check bool) "valid schedule clean" true (Diag.is_clean (diags sched));
  (* Early issue: instruction 3 (Vrotate r6, r0) consumes the slot-0 load;
     issuing it at cycle 0 violates the dependence. Keep finish consistent so
     only the hazard fires. *)
  (match List.nth program 3 with
  | Isa.Vrotate (6, 0, 0) -> ()
  | i -> Alcotest.failf "fixture drifted: instruction 3 is %s" (Isa.describe i));
  let early =
    mutate_slot 3
      (fun slot ->
        {
          slot with
          Schedule.issue = 0;
          finish = Schedule.latency config ~vector_len:k slot.Schedule.instr;
        })
      sched
  in
  check_rule "early issue" "raw-hazard" (diags early);
  (* Swap the timing of two identical Vadd slots on the Add FU: the later
     reduction step now pretends to run before its producer rotate. *)
  let adds =
    List.filteri
      (fun _ (s : Schedule.slot) ->
        match s.Schedule.instr with Isa.Vadd (6, 6, 5) -> true | _ -> false)
      sched.Schedule.slots
  in
  Alcotest.(check bool) "fixture has reduction adds" true (List.length adds >= 2);
  let indices =
    List.filteri (fun _ _ -> true) (List.mapi (fun i s -> (i, s)) sched.Schedule.slots)
    |> List.filter_map (fun (i, (s : Schedule.slot)) ->
           match s.Schedule.instr with Isa.Vadd (6, 6, 5) -> Some i | _ -> None)
  in
  let i1 = List.nth indices 0 and i2 = List.nth indices 1 in
  let s1 = List.nth sched.Schedule.slots i1 and s2 = List.nth sched.Schedule.slots i2 in
  let swapped =
    sched
    |> mutate_slot i1 (fun slot ->
           { slot with Schedule.issue = s2.Schedule.issue; finish = s2.Schedule.finish })
    |> mutate_slot i2 (fun slot ->
           { slot with Schedule.issue = s1.Schedule.issue; finish = s1.Schedule.finish })
  in
  Alcotest.(check bool) "swapped slots flagged" false (Diag.is_clean (diags swapped));
  (* Bookkeeping tampering. *)
  check_rule "makespan" "makespan-mismatch"
    (diags { sched with Schedule.makespan = sched.Schedule.makespan + 1 });
  check_rule "fu busy" "fu-busy-mismatch"
    (diags
       {
         sched with
         Schedule.fu_busy =
           (match sched.Schedule.fu_busy with
           | (fu, n) :: rest -> (fu, n + 1) :: rest
           | [] -> assert false);
       });
  check_rule "missing slot" "length-mismatch"
    (diags { sched with Schedule.slots = List.tl sched.Schedule.slots });
  check_rule "foreign instr" "instr-mismatch"
    (diags (mutate_slot 3 (fun slot -> { slot with Schedule.instr = Isa.Delay 0 }) sched));
  (* Finish inconsistent with the latency model. *)
  check_rule "finish" "finish-mismatch"
    (diags (mutate_slot 5 (fun slot -> { slot with Schedule.finish = slot.Schedule.finish - 1 }) sched))

(* --- fuzz property: lint-clean programs execute, and reads/writes match the
   VM's observed register accesses --- *)

let num_regs = 6
let mem_slots = 4
let fuzz_k = 8

let random_instr rng =
  (* Sources lean on the registers the prelude defines (r0..r3) so a useful
     share of programs is lint-clean; destinations roam the whole file, and a
     small defect rate exercises every error rule. *)
  let src () =
    match Rng.int rng 20 with
    | 0 -> num_regs + Rng.int rng 3 (* bad-register *)
    | 1 | 2 -> Rng.int rng num_regs (* possibly uninitialized *)
    | _ -> Rng.int rng 4
  in
  let dst () = if Rng.int rng 20 = 0 then num_regs + Rng.int rng 3 else Rng.int rng num_regs in
  let slot () = if Rng.int rng 20 = 0 then mem_slots else Rng.int rng mem_slots in
  match Rng.int rng 13 with
  | 0 -> Isa.Vadd (dst (), src (), src ())
  | 1 -> Isa.Vsub (dst (), src (), src ())
  | 2 -> Isa.Vmul (dst (), src (), src ())
  | 3 -> Isa.Vhash (dst (), src (), src ())
  | 4 -> Isa.Vntt { dst = dst (); src = src (); inverse = Rng.bool rng }
  | 5 ->
    let tile = if Rng.int rng 8 = 0 then 3 else [| 2; 4; 8 |].(Rng.int rng 3) in
    Isa.Vntt_tiled { dst = dst (); src = src (); tile; inverse = Rng.bool rng }
  | 6 ->
    let perm =
      match Rng.int rng 10 with
      | 0 | 1 -> Array.init fuzz_k (fun _ -> Rng.int rng fuzz_k) (* gather *)
      | 2 -> Array.init fuzz_k (fun i -> if i = 0 then fuzz_k else i) (* bad *)
      | _ ->
        let p = Array.init fuzz_k (fun i -> i) in
        for i = fuzz_k - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let t = p.(i) in
          p.(i) <- p.(j);
          p.(j) <- t
        done;
        p
    in
    Isa.Vshuffle (dst (), src (), perm)
  | 7 ->
    let n = if Rng.int rng 20 = 0 then -1 else Rng.int rng (fuzz_k + 1) in
    Isa.Vrotate (dst (), src (), n)
  | 8 ->
    let g = if Rng.int rng 8 = 0 then 3 (* bad for k=8 *) else Rng.int rng 3 in
    Isa.Vinterleave (dst (), src (), g)
  | 9 -> Isa.Vsplat (dst (), Gf.random rng)
  | 10 -> Isa.Vload (dst (), slot ())
  | 11 -> Isa.Vstore (slot (), src ())
  | _ -> Isa.Delay (Rng.int rng 4)

let random_program rng =
  (* Seed some defined registers so not every program trips def-before-use. *)
  let prelude =
    [
      Isa.Vload (0, 0);
      Isa.Vload (1, 1);
      Isa.Vsplat (2, Gf.random rng);
      Isa.Vsplat (3, Gf.random rng);
    ]
  in
  prelude @ List.init (2 + Rng.int rng 10) (fun _ -> random_instr rng)

let fill_vm rng vm =
  for s = 0 to mem_slots - 1 do
    Vm.write_mem vm s (Array.init fuzz_k (fun _ -> Gf.random rng))
  done

let test_fuzz_clean_programs_execute () =
  let rng = Rng.create 2024L in
  let clean_count = ref 0 in
  for trial = 0 to 299 do
    let program = random_program rng in
    let report = Lint.lint ~num_regs ~mem_slots ~vector_len:fuzz_k program in
    if Lint.is_clean report then begin
      incr clean_count;
      let vm = Vm.create ~vector_len:fuzz_k ~num_regs ~mem_slots in
      fill_vm rng vm;
      try Vm.exec vm program
      with Invalid_argument msg ->
        Alcotest.failf "trial %d: lint-clean program raised %S\n%s" trial msg
          (Lint.summary report)
    end
  done;
  (* The generator is seeded; make sure the property is not vacuous. *)
  Alcotest.(check bool)
    (Printf.sprintf "enough clean programs (%d)" !clean_count)
    true (!clean_count >= 30)

let test_fuzz_reads_writes_observed () =
  let rng = Rng.create 4047L in
  let checked = ref 0 in
  for _trial = 0 to 199 do
    let program = random_program rng in
    let report = Lint.lint ~num_regs ~mem_slots ~vector_len:fuzz_k program in
    if Lint.is_clean report then begin
      let vm = Vm.create ~vector_len:fuzz_k ~num_regs ~mem_slots in
      fill_vm rng vm;
      List.iteri
        (fun i instr ->
          incr checked;
          let before = Array.init num_regs (fun r -> Vm.read_reg vm r) in
          (* A shadow VM agreeing with [vm] only on memory and the declared
             source registers: if Isa.reads is complete, the destination value
             cannot differ. *)
          let shadow = Vm.create ~vector_len:fuzz_k ~num_regs ~mem_slots in
          for s = 0 to mem_slots - 1 do
            Vm.write_mem shadow s (Vm.read_mem vm s)
          done;
          let reads = Isa.reads instr in
          for r = 0 to num_regs - 1 do
            if List.mem r reads then Vm.write_reg shadow r before.(r)
            else Vm.write_reg shadow r (Array.init fuzz_k (fun _ -> Gf.random rng))
          done;
          Vm.exec vm [ instr ];
          Vm.exec shadow [ instr ];
          (* Observed register writes are declared by Isa.writes. *)
          let declared = Isa.writes instr in
          for r = 0 to num_regs - 1 do
            if Vm.read_reg vm r <> before.(r) then
              Alcotest.(check (option int))
                (Printf.sprintf "#%d %s: modified r%d must be declared" i
                   (Isa.describe instr) r)
                (Some r) declared
          done;
          (* The declared destination depends only on declared reads. *)
          match declared with
          | Some d ->
            Array.iteri
              (fun lane v ->
                Alcotest.check gf
                  (Printf.sprintf "#%d %s: r%d lane %d from declared reads only" i
                     (Isa.describe instr) d lane)
                  v
                  (Vm.read_reg shadow d).(lane))
              (Vm.read_reg vm d)
          | None -> ())
        program
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough instructions checked (%d)" !checked)
    true (!checked >= 200)

(* --- VM error cross-referencing (instruction index + constructor) --- *)

let test_vm_error_index () =
  let vm = Vm.create ~vector_len:8 ~num_regs:4 ~mem_slots:4 in
  (match Vm.exec vm [ Isa.Vsplat (0, Gf.one); Isa.Vload (1, 99) ] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    let has sub =
      let rec scan i =
        i + String.length sub <= String.length msg
        && (String.sub msg i (String.length sub) = sub || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "index in %S" msg) true (has "instruction 1");
    Alcotest.(check bool) (Printf.sprintf "constructor in %S" msg) true (has "(Vload)"));
  (* The index matches what the linter reports for the same defect. *)
  let report =
    Lint.lint ~num_regs:4 ~mem_slots:4 ~vector_len:8
      [ Isa.Vsplat (0, Gf.one); Isa.Vload (1, 99) ]
  in
  match Diag.errors report.Lint.diags with
  | [ d ] -> Alcotest.(check int) "lint anchors to the same index" 1 d.Diag.index
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

(* --- circuit linter: the shipped workloads are its acceptance surface --- *)

let test_circuits_clean () =
  List.iter
    (fun (e : Circuit_corpus.entry) ->
      let inst, asgn = e.Circuit_corpus.generate ~scale:1 in
      let v = Circuit_lint.analyze inst asgn in
      Alcotest.(check bool)
        (e.Circuit_corpus.name ^ " clean: " ^ Circuit_lint.summary v)
        true (Circuit_lint.is_clean v);
      Alcotest.(check int)
        (e.Circuit_corpus.name ^ " no residual freedom")
        0 v.Circuit_lint.probe_free;
      (* The structure report the perf model consumes is internally sound. *)
      let r = Circuit_report.of_instance ~name:e.Circuit_corpus.name inst in
      match Structure.consistent r with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s report inconsistent: %s" e.Circuit_corpus.name msg)
    Circuit_corpus.entries

(* --- circuit linter: hand-built defects --- *)

let lint_builder f =
  let b = Builder.create () in
  f b;
  let inst, asgn = Builder.finalize b in
  Circuit_lint.lint inst asgn

let test_circuit_lint_detects () =
  (* A witness wire no constraint mentions. *)
  check_rule "unconstrained" "unconstrained-variable"
    (lint_builder (fun b ->
         let x = Builder.witness b (Gf.of_int 3) in
         Gadgets.assert_equal b (Builder.lc_var x)
           (Builder.lc_const (Gf.of_int 3));
         ignore (Builder.witness b (Gf.of_int 7))));
  (* A public input no constraint mentions (warning). *)
  let unused =
    lint_builder (fun b ->
        let x = Builder.witness b (Gf.of_int 3) in
        Gadgets.assert_equal b (Builder.lc_var x)
          (Builder.lc_const (Gf.of_int 3));
        ignore (Builder.input b (Gf.of_int 9)))
  in
  check_rule "unused input" "unused-public-input" unused;
  Alcotest.(check bool) "unused input is advisory" true (Diag.is_clean unused);
  (* The same row twice (exact copy), and once more scaled by 2: the copy is
     a duplicate, the scaled row is canonically equal but raw-different. *)
  let dup =
    lint_builder (fun b ->
        let x = Builder.witness b (Gf.of_int 3) in
        let eq () =
          Builder.constrain b (Builder.lc_var x) (Builder.lc_const Gf.one)
            (Builder.lc_const (Gf.of_int 3))
        in
        eq ();
        eq ();
        Builder.constrain b
          (Builder.lc_scale (Gf.of_int 2) (Builder.lc_var x))
          (Builder.lc_const Gf.one)
          (Builder.lc_const (Gf.of_int 6)))
  in
  check_rule "duplicate" "duplicate-constraint" dup;
  check_rule "redundant" "redundant-constraint" dup;
  (* x is pinned to the literal 3 — a wire that could be folded away. *)
  check_rule "constant" "constant-variable" dup;
  Alcotest.(check bool) "row-redundancy rules are warnings" true
    (Diag.is_clean dup)

let test_unsatisfied_and_trivial () =
  (* Builder.constrain refuses violated constraints, so assemble the broken
     instances directly: side 4 (log_size 2), w = [w0; _], io = [1; _]. *)
  let mk ea eb ec ~nc =
    let m e = Sparse.of_entries ~nrows:4 ~ncols:4 e in
    R1cs.make ~a:(m ea) ~b:(m eb) ~c:(m ec) ~log_size:2 ~num_constraints:nc
      ~num_witness:1 ~num_io:1
  in
  (* w0 * 1 = 5 with w0 = 4. *)
  let bad =
    mk [ (0, 0, Gf.one) ] [ (0, 2, Gf.one) ] [ (0, 2, Gf.of_int 5) ] ~nc:1
  in
  let asgn = { R1cs.w = [| Gf.of_int 4; Gf.zero |]; io = [| Gf.one; Gf.zero |] } in
  check_rule "unsatisfied" "unsatisfied-constraint" (Circuit_lint.lint bad asgn);
  (* Row 1 is declared a real constraint but is completely empty. *)
  let hollow =
    mk [ (0, 0, Gf.one) ] [ (0, 2, Gf.one) ] [ (0, 2, Gf.of_int 5) ] ~nc:2
  in
  let asgn = { R1cs.w = [| Gf.of_int 5; Gf.zero |]; io = [| Gf.one; Gf.zero |] } in
  check_rule "trivial" "trivial-constraint" (Circuit_lint.lint hollow asgn)

(* --- circuit linter: rank-probe behaviour --- *)

let test_rank_probe () =
  (* Booleanity rows are bilinear, so unit propagation cannot touch the bits
     of a decomposition; the Jacobian probe pins every one of them (the
     booleanity derivative 2b - 1 is nonzero on {0,1}). *)
  let b = Builder.create () in
  let v = Builder.input b (Gf.of_int 5) in
  ignore (Gadgets.bits_of b ~width:3 v);
  let inst, asgn = Builder.finalize b in
  let verdict = Circuit_lint.analyze inst asgn in
  Alcotest.(check bool)
    ("bits clean: " ^ Circuit_lint.summary verdict)
    true
    (Circuit_lint.is_clean verdict);
  Alcotest.(check bool) "bits reached the probe" true
    (verdict.Circuit_lint.probe_unknowns >= 3);
  Alcotest.(check int) "bits pinned" 0 verdict.Circuit_lint.probe_free;
  (* One product row over two fresh witnesses keeps a genuine degree of
     freedom: x * y = 6 moves along (dx, dy) = (x, -y). *)
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 2) in
  let y = Builder.witness b (Gf.of_int 3) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var y)
    (Builder.lc_const (Gf.of_int 6));
  let inst, asgn = Builder.finalize b in
  let verdict = Circuit_lint.analyze inst asgn in
  check_rule "x*y free" "under-constrained-variable" verdict.Circuit_lint.diags;
  Alcotest.(check bool) "free direction confirmed" true
    (verdict.Circuit_lint.probe_free >= 1);
  (* The default synthetic chain leaves its seed wire a free witness the
     whole chain slides along (the corpus lints the public_seed variant). *)
  let inst, asgn = Synthetic.circuit ~n_constraints:64 ~seed:5L () in
  check_rule "synthetic seed wire" "under-constrained-variable"
    (Circuit_lint.lint inst asgn)

(* --- mutation oracle: every weakening trips its lint rule --- *)

let test_mutation_oracle () =
  let entry =
    match Circuit_corpus.find "auction" with
    | Some e -> e
    | None -> Alcotest.fail "auction entry missing"
  in
  let inst, asgn = entry.Circuit_corpus.generate ~scale:1 in
  let muts = Circuit_mutate.sweep ~seed:31L ~count:40 inst asgn in
  Alcotest.(check bool)
    (Printf.sprintf "sweep produced mutants (%d)" (List.length muts))
    true
    (List.length muts >= 30);
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (op, mutant) ->
      Hashtbl.replace kinds (Circuit_mutate.op_name op) ();
      Alcotest.(check bool)
        (Circuit_mutate.op_to_string op ^ ": mutant still satisfiable")
        true
        (R1cs.satisfied mutant asgn);
      check_rule
        (Circuit_mutate.op_to_string op)
        (Circuit_mutate.expected_rule op)
        (Circuit_lint.lint mutant asgn))
    muts;
  Alcotest.(check bool)
    (Printf.sprintf "operator diversity (%d kinds)" (Hashtbl.length kinds))
    true
    (Hashtbl.length kinds >= 4)

let test_pinned_corpus () =
  (* `dune runtest` runs in the test directory; `dune exec` from the root. *)
  let path =
    if Sys.file_exists "corpus/circuits/pinned.tsv" then
      "corpus/circuits/pinned.tsv"
    else "test/corpus/circuits/pinned.tsv"
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let cache = Hashtbl.create 8 in
  let generate name =
    match Hashtbl.find_opt cache name with
    | Some v -> v
    | None -> (
      match Circuit_corpus.find name with
      | None -> Alcotest.failf "pinned corpus names unknown circuit %S" name
      | Some e ->
        let v = e.Circuit_corpus.generate ~scale:1 in
        Hashtbl.add cache name v;
        v)
  in
  let replayed = ref 0 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char '\t' line with
        | [ name; op_s; rule ] -> (
          let op = Circuit_mutate.op_of_string op_s in
          Alcotest.(check string)
            (op_s ^ " round-trips")
            op_s
            (Circuit_mutate.op_to_string op);
          let inst, asgn = generate name in
          match Circuit_mutate.apply inst asgn op with
          | None ->
            Alcotest.failf "%s %s: pinned operator no longer applicable" name
              op_s
          | Some mutant ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s: mutant still satisfiable" name op_s)
              true
              (R1cs.satisfied mutant asgn);
            check_rule
              (Printf.sprintf "%s %s" name op_s)
              rule
              (Circuit_lint.lint mutant asgn);
            incr replayed)
        | _ -> Alcotest.failf "malformed pinned corpus line %S" line)
    (List.rev !lines);
  Alcotest.(check bool)
    (Printf.sprintf "pinned corpus is populated (%d replayed)" !replayed)
    true (!replayed >= 20)

(* --- structure reports: closed forms on the band-1 chain --- *)

let test_report_closed_forms () =
  let c = 32 in
  let inst, _ = Synthetic.circuit ~n_constraints:c ~band:1 ~row_nnz:1 ~seed:3L () in
  let r = Circuit_report.of_instance ~name:"chain" inst in
  Alcotest.(check int) "constraints" c r.Circuit_report.num_constraints;
  Alcotest.(check int) "nnz A" c r.Circuit_report.a.Circuit_report.nnz;
  Alcotest.(check int) "nnz B" c r.Circuit_report.b.Circuit_report.nnz;
  Alcotest.(check int) "nnz C" c r.Circuit_report.c.Circuit_report.nnz;
  Alcotest.(check int) "total nnz" (3 * c) r.Circuit_report.total_nnz;
  Alcotest.(check (float 1e-9)) "density" 3.0 r.Circuit_report.density_factor;
  Alcotest.(check int) "rows nonempty" c r.Circuit_report.a.Circuit_report.rows_nonempty;
  Alcotest.(check int) "row nnz max" 1 r.Circuit_report.a.Circuit_report.row_nnz_max;
  Alcotest.(check (float 1e-9)) "row nnz mean" 1.0
    r.Circuit_report.a.Circuit_report.row_nnz_mean;
  (* A and B reference the current wire (diagonal); C the next one over. *)
  Alcotest.(check int) "A band" 0 r.Circuit_report.a.Circuit_report.band_max;
  Alcotest.(check int) "B band" 0 r.Circuit_report.b.Circuit_report.band_max;
  Alcotest.(check int) "C band" 1 r.Circuit_report.c.Circuit_report.band_max;
  Alcotest.(check (float 1e-9)) "C band mean" 1.0
    r.Circuit_report.c.Circuit_report.band_mean;
  Alcotest.(check (float 1e-9)) "band locality" 1.0
    r.Circuit_report.c.Circuit_report.band_within_64;
  (* Wires: w0 in A0/B0 (2 uses), w1..w(c-1) in A/B/C (3 each), wc in C only
     (1); the io constant-one column is live but never referenced. *)
  Alcotest.(check int) "live vars" (c + 2)
    r.Circuit_report.fanout.Circuit_report.live_vars;
  Alcotest.(check int) "unused vars" 1
    r.Circuit_report.fanout.Circuit_report.unused_vars;
  Alcotest.(check int) "fanout max" 3
    r.Circuit_report.fanout.Circuit_report.fanout_max;
  Alcotest.(check (float 1e-9)) "fanout mean"
    (float_of_int (3 * c) /. float_of_int (c + 2))
    r.Circuit_report.fanout.Circuit_report.fanout_mean;
  match Structure.consistent r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chain report inconsistent: %s" msg

let test_structure_model () =
  let report n_constraints row_nnz =
    let inst, _ = Synthetic.circuit ~n_constraints ~band:8 ~row_nnz ~seed:9L () in
    Circuit_report.of_instance inst
  in
  let anchor = report 64 2 in
  Alcotest.(check (float 1e-9)) "self density" 1.0
    (Structure.density_relative ~anchor anchor);
  let dense = report 64 5 in
  Alcotest.(check (float 1e-9)) "relative density"
    (dense.Circuit_report.density_factor /. anchor.Circuit_report.density_factor)
    (Structure.density_relative ~anchor dense);
  Alcotest.(check bool) "chain is streamable" true
    (Structure.spmv_streamable anchor);
  Alcotest.(check bool) "zero sparsity bound fails" false
    (Structure.spmv_streamable ~max_row_nnz:0 anchor);
  (match Structure.consistent anchor with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "anchor inconsistent: %s" msg);
  (match
     Structure.consistent
       { anchor with Circuit_report.total_nnz = anchor.Circuit_report.total_nnz + 1 }
   with
  | Ok () -> Alcotest.fail "tampered total_nnz accepted"
  | Error _ -> ());
  Alcotest.(check bool) "report builds a simulator workload" true
    (Structure.workload_of_report ~anchor dense <> []);
  Alcotest.(check bool) "prover estimate positive" true
    (Structure.prover_seconds_of_report ~anchor dense > 0.)

(* --- diag JSON + exit-code contract --- *)

let test_diag_json_roundtrip () =
  let ds =
    [
      Diag.error ~index:3 ~rule:"under-constrained-variable"
        "free direction at z[3]: \"quote\" back\\slash\tand\nnewline";
      Diag.warning ~index:Diag.program_level ~rule:"probe-overflow" "budget";
      Diag.error ~index:0 ~rule:"unsatisfied-constraint" "row 0";
    ]
  in
  Alcotest.(check bool) "round-trip" true
    (Diag.list_of_json_string (Diag.list_to_json ds) = ds);
  Alcotest.(check bool) "empty round-trip" true
    (Diag.list_of_json_string (Diag.list_to_json []) = []);
  Alcotest.(check int) "clean exit code" 0 (Diag.exit_code []);
  Alcotest.(check int) "under-constrained exit" 21
    (Diag.exit_code [ Diag.error ~index:1 ~rule:"under-constrained-variable" "x" ]);
  (* The lowest code wins when several categories fire at once. *)
  (match Diag.exit_category ds with
  | Some (rule, code) ->
    Alcotest.(check string) "winning rule" "under-constrained-variable" rule;
    Alcotest.(check int) "winning code" 21 code
  | None -> Alcotest.fail "expected an exit category");
  Alcotest.(check int) "unknown rule maps to the reserved code" 41
    (Diag.rule_code "no-such-rule");
  (* A tampered envelope is rejected, not silently accepted. *)
  let expect_bad name s =
    match Diag.list_of_json_string s with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Json_min.Bad_json _ -> ()
  in
  expect_bad "wrong schema" {|{"schema": "bogus/v1", "exit_code": 0, "diags": []}|};
  expect_bad "exit-code mismatch"
    {|{"schema": "nocap-diag/v1", "exit_code": 7, "diags": []}|}

(* --- litmus memory discipline: overwritten writes are flagged --- *)

let test_litmus_overwrite_flagged () =
  let open Litmus_circuit in
  let txs =
    [
      { row_a = 0; op_a = Write 5; row_b = 1; op_b = Read };
      { row_a = 0; op_a = Write 9; row_b = 2; op_b = Read };
    ]
  in
  let inst, asgn = Litmus_circuit.circuit ~rows:4 ~transactions:txs ~seed:7L () in
  let diags = Circuit_lint.lint inst asgn in
  Alcotest.(check bool) "overwritten write is not clean" false
    (Diag.is_clean diags);
  Alcotest.(check bool) "flagged as a free written value" true
    (Diag.has_rule "under-constrained-variable" diags
    || Diag.has_rule "unconstrained-variable" diags);
  (* The corpus's write-once batch stays clean. *)
  let txs = Circuit_corpus.litmus_transactions ~rows:8 in
  let inst, asgn = Litmus_circuit.circuit ~rows:8 ~transactions:txs ~seed:7L () in
  Alcotest.(check bool) "write-once batch clean" true
    (Diag.is_clean (Circuit_lint.lint inst asgn))

let suite =
  [
    Alcotest.test_case "kernel programs lint clean" `Quick test_kernels_clean;
    Alcotest.test_case "spmv programs lint clean + compute" `Quick test_spmv_programs_clean;
    Alcotest.test_case "workload spmv programs clean" `Quick test_workload_programs_clean;
    Alcotest.test_case "linter detects injected defects" `Quick test_lint_detects;
    Alcotest.test_case "register pressure accounting" `Quick test_pressure_accounting;
    Alcotest.test_case "kernel schedules check clean" `Quick test_schedules_clean;
    Alcotest.test_case "schedule checker as oracle" `Quick test_check_oracle;
    Alcotest.test_case "fuzz: clean programs execute" `Quick test_fuzz_clean_programs_execute;
    Alcotest.test_case "fuzz: reads/writes observed" `Quick test_fuzz_reads_writes_observed;
    Alcotest.test_case "VM errors carry instruction index" `Quick test_vm_error_index;
    Alcotest.test_case "circuit corpus lints clean" `Slow test_circuits_clean;
    Alcotest.test_case "circuit linter detects injected defects" `Quick
      test_circuit_lint_detects;
    Alcotest.test_case "circuit linter: unsatisfied and trivial rows" `Quick
      test_unsatisfied_and_trivial;
    Alcotest.test_case "rank probe pins bits, finds free products" `Quick
      test_rank_probe;
    Alcotest.test_case "mutation operators trip their rules" `Quick
      test_mutation_oracle;
    Alcotest.test_case "pinned mutant corpus replays" `Quick test_pinned_corpus;
    Alcotest.test_case "structure report closed forms" `Quick
      test_report_closed_forms;
    Alcotest.test_case "structure feeds the perf model" `Quick
      test_structure_model;
    Alcotest.test_case "diag JSON round-trips" `Quick test_diag_json_roundtrip;
    Alcotest.test_case "litmus overwrite is under-constrained" `Quick
      test_litmus_overwrite_flagged;
  ]
