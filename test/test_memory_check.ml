(* Offline memory checking: consistency proofs for access traces, the
   multiset equation's rejection of lying reads, and the constraint-count
   advantage over the multiplexer approach. *)

module Gf = Zk_field.Gf
module Mc = Zk_r1cs.Memory_check
module R1cs = Zk_r1cs.R1cs
module Builder = Zk_r1cs.Builder
module Spartan = Zk_spartan.Spartan
module Transcript = Zk_hash.Transcript
module Rng = Zk_util.Rng

let challenges () =
  let t = Transcript.create "memcheck-test" in
  Array.init 4 (fun _ ->
      (Transcript.challenge_gf t "gamma", Transcript.challenge_gf t "delta"))

let random_trace rng ~m ~count =
  List.init count (fun _ ->
      if Rng.bool rng then Mc.Load (Rng.int rng m)
      else Mc.Store (Rng.int rng m, Rng.int rng 1000))

let test_reference () =
  let reads, final = Mc.reference ~init:[| 5; 6 |] [ Mc.Load 1; Mc.Store (1, 9); Mc.Load 1; Mc.Load 0 ] in
  Alcotest.(check (list int)) "reads" [ 6; 9; 5 ] reads;
  Alcotest.(check (array int)) "final" [| 5; 9 |] final

let test_honest_trace_satisfies () =
  let rng = Rng.create 310L in
  List.iter
    (fun (m, count) ->
      let init = Array.init m (fun _ -> Rng.int rng 1000) in
      let ops = random_trace rng ~m ~count in
      let inst, asn = Mc.circuit ~challenges:(challenges ()) ~init ops () in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d t=%d satisfied" m count)
        true (R1cs.satisfied inst asn))
    [ (2, 5); (8, 20); (16, 40) ]

let test_memory_semantics_via_outputs () =
  (* The circuit's revealed load results equal the reference semantics. *)
  let init = [| 10; 20; 30; 40 |] in
  let ops =
    [ Mc.Load 2; Mc.Store (2, 99); Mc.Load 2; Mc.Store (0, 7); Mc.Load 0; Mc.Load 3 ]
  in
  let expected_reads, _ = Mc.reference ~init ops in
  let inst, asn = Mc.circuit ~challenges:(challenges ()) ~init ops () in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  (* Revealed outputs sit at the end of the io prefix. *)
  let io = R1cs.public_io inst asn in
  let n_io = Array.length io in
  let reads = List.length expected_reads in
  let revealed = Array.sub io (n_io - reads) reads in
  List.iteri
    (fun i expect ->
      Alcotest.(check bool)
        (Printf.sprintf "read %d" i)
        true
        (Gf.equal revealed.(i) (Gf.of_int expect)))
    expected_reads

let test_trace_proves_end_to_end () =
  let rng = Rng.create 311L in
  let init = Array.init 8 (fun _ -> Rng.int rng 100) in
  let ops = random_trace rng ~m:8 ~count:12 in
  let inst, asn = Mc.circuit ~challenges:(challenges ()) ~init ops () in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "memory-check proof failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_lying_read_caught () =
  (* A prover that returns a stale value for a read cannot build the
     circuit: the multiset equation fails at construction. We simulate the
     lie by replaying a trace against a corrupted initial claim: claim the
     final state shows the store, but read stale data — concretely, build
     with an init array that disagrees with the witness simulation by
     tampering post-hoc with the assignment instead. *)
  let init = [| 1; 2 |] in
  let ops = [ Mc.Store (0, 50); Mc.Load 0 ] in
  let inst, asn = Mc.circuit ~challenges:(challenges ()) ~init ops () in
  Alcotest.(check bool) "honest ok" true (R1cs.satisfied inst asn);
  (* Flip witness wires one at a time; no single perturbation of the read
     value region may keep the instance satisfied. *)
  let broke = ref true in
  for i = 0 to min 40 (Array.length asn.R1cs.w - 1) do
    if not (Gf.equal asn.R1cs.w.(i) Gf.zero) then begin
      let saved = asn.R1cs.w.(i) in
      asn.R1cs.w.(i) <- Gf.add saved Gf.one;
      if R1cs.satisfied inst asn then broke := false;
      asn.R1cs.w.(i) <- saved
    end
  done;
  Alcotest.(check bool) "no single-wire lie survives" true !broke

let test_constraint_advantage () =
  (* O(1) vs O(m) per access: at 64 cells the offline checker must be far
     cheaper, and its per-access constraint count must not grow with m. *)
  let c64 = Mc.constraints_per_access ~memory:64 in
  let c1024 = Mc.constraints_per_access ~memory:1024 in
  Alcotest.(check bool) "near-constant in memory size" true (c1024 - c64 <= 8);
  Alcotest.(check bool) "beats multiplexers at 64 cells" true
    (c64 < Mc.multiplexer_constraints_per_access ~memory:64);
  (* And measured, not just modeled. The fair comparison is the marginal
     cost per access (the Init/Final bookkeeping is a one-time O(m) cost the
     trace amortizes): grow the trace and compare the constraint deltas. *)
  let rng = Rng.create 312L in
  let m = 32 in
  let init = Array.init m (fun _ -> Rng.int rng 100) in
  let ops20 = random_trace rng ~m ~count:20 in
  let ops40 = ops20 @ random_trace rng ~m ~count:20 in
  let count inst = inst.R1cs.num_constraints in
  let mc20, _ = Mc.circuit ~challenges:(challenges ()) ~init ops20 () in
  let mc40, _ = Mc.circuit ~challenges:(challenges ()) ~init ops40 () in
  let mc_marginal = float_of_int (count mc40 - count mc20) /. 20.0 in
  let mk_txs ops =
    List.map
      (fun op ->
        match op with
        | Mc.Load a -> { Zk_workloads.Litmus_circuit.row_a = a; op_a = Zk_workloads.Litmus_circuit.Read; row_b = a; op_b = Zk_workloads.Litmus_circuit.Read }
        | Mc.Store (a, v) -> { Zk_workloads.Litmus_circuit.row_a = a; op_a = Zk_workloads.Litmus_circuit.Write v; row_b = a; op_b = Zk_workloads.Litmus_circuit.Read })
      ops
  in
  let mux20, _ = Zk_workloads.Litmus_circuit.circuit ~rows:m ~transactions:(mk_txs ops20) ~seed:313L () in
  let mux40, _ = Zk_workloads.Litmus_circuit.circuit ~rows:m ~transactions:(mk_txs ops40) ~seed:313L () in
  let mux_marginal = float_of_int (count mux40 - count mux20) /. 40.0 in
  Alcotest.(check bool)
    (Printf.sprintf "measured marginal advantage (%.0f vs %.0f)" mc_marginal mux_marginal)
    true
    (mc_marginal < mux_marginal)

let test_bad_arguments () =
  Alcotest.(check bool) "empty memory" true
    (try
       ignore (Mc.circuit ~challenges:(challenges ()) ~init:[||] [] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "address out of range" true
    (try
       ignore (Mc.circuit ~challenges:(challenges ()) ~init:[| 1 |] [ Mc.Load 5 ] ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "reference semantics" `Quick test_reference;
    Alcotest.test_case "honest traces satisfy" `Quick test_honest_trace_satisfies;
    Alcotest.test_case "load results revealed" `Quick test_memory_semantics_via_outputs;
    Alcotest.test_case "proves end to end" `Quick test_trace_proves_end_to_end;
    Alcotest.test_case "lying reads caught" `Quick test_lying_read_caught;
    Alcotest.test_case "constraint advantage" `Quick test_constraint_advantage;
    Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
  ]
