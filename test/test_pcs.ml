(* The backend-pluggable proving engine: PCS interface conformance on both
   backends, golden proof bytes for the default (Orion) backend across
   domain counts, engine-context invariance, the tagged serialization
   format, and the Engine.Config environment parsing. *)

module Gf = Zk_field.Gf
module Rng = Zk_util.Rng
module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Mle = Zk_poly.Mle
module Pool = Nocap_parallel.Pool
module R1cs = Zk_r1cs.R1cs
module Engine = Zk_pcs.Engine
module Orion = Zk_orion.Orion
module Orion_pcs = Zk_orion.Orion_pcs
module Fri_pcs = Zk_orion.Fri_pcs
module Spartan = Zk_spartan.Spartan
module Serialize = Zk_spartan.Serialize
module Synthetic = Zk_workloads.Synthetic

(* Spartan over the second backend — the whole point of the functor. *)
module Spartan_fri = Zk_spartan.Spartan.Make (Zk_orion.Fri_pcs)

(* --- golden proof bytes: the refactor must not move a single byte of the
   default backend's proofs, under any domain count --- *)

(* sha3 over the payload after the 9-byte header (8-byte magic + tag); the
   hashes were captured from the pre-functor prover over the payload after
   its 8-byte magic — the payload layout is identical. *)
let payload_hash bytes =
  Keccak.to_hex (Keccak.sha3_256 (Bytes.sub bytes 9 (Bytes.length bytes - 9)))

let golden_cases =
  [
    ( "synthetic-300", 300, 44L, Spartan.test_params,
      "77c06dcebb8dad099ac760432defa22571690d8d0216f9a6309133e3191871eb" );
    ( "synthetic-2000", 2000, 42L, Spartan.test_params,
      "3eb5515232a2c1cf92911c038b73d06d9cfe5eff8289aa23a94440cc0de78afe" );
    ( "synthetic-500-r128", 500, 43L,
      { Spartan.pcs = Orion.default_params; repetitions = 2 },
      "26b9a4d0a445c7e4aa346b7179d96fb4fc30d0051fd97d90a6a7b35803667363" );
  ]

let test_golden_bytes () =
  List.iter
    (fun (name, n, seed, params, expected) ->
      let inst, asn = Synthetic.circuit ~n_constraints:n ~seed () in
      List.iter
        (fun d ->
          Pool.with_domains d (fun () ->
              let proof, _ = Spartan.prove params inst asn in
              Alcotest.(check string)
                (Printf.sprintf "%s at %d domains" name d)
                expected
                (payload_hash (Spartan.proof_to_bytes proof))))
        [ 1; 2; 3 ])
    golden_cases

(* --- engine-context invariance: pools and trace sinks schedule and
   observe, they never change bytes --- *)

let test_engine_invariance () =
  let inst, asn = Synthetic.circuit ~n_constraints:250 ~seed:91L () in
  let baseline, _ = Spartan.prove Spartan.test_params inst asn in
  let baseline_bytes = Spartan.proof_to_bytes baseline in
  let traced = ref [] in
  let engine =
    Engine.create ~trace:(fun k v -> traced := (k, v) :: !traced) ()
  in
  let proof, _ = Spartan.prove ~engine Spartan.test_params inst asn in
  Alcotest.(check bool)
    "explicit engine produces identical bytes" true
    (Bytes.equal baseline_bytes (Spartan.proof_to_bytes proof));
  Alcotest.(check bool) "trace sink observed the prover" true (!traced <> []);
  Pool.with_domains 2 (fun () ->
      let engine = Engine.create () in
      let p2, _ = Spartan.prove ~engine Spartan.test_params inst asn in
      Alcotest.(check bool)
        "engine under with_domains produces identical bytes" true
        (Bytes.equal baseline_bytes (Spartan.proof_to_bytes p2)))

(* --- both backends prove and verify through the same functor --- *)

module Check_backend (S : Zk_spartan.Spartan.S) = struct
  let run name ~n ~seed =
    let inst, asn = Synthetic.circuit ~n_constraints:n ~seed () in
    let io = R1cs.public_io inst asn in
    let proof, _ = S.prove S.test_params inst asn in
    (match S.verify S.test_params inst ~io proof with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: valid proof rejected: %s" name (Zk_pcs.Verify_error.to_string e));
    (* Tampered io must fail. *)
    let bad_io = Array.copy io in
    bad_io.(Array.length bad_io - 1) <-
      Gf.add bad_io.(Array.length bad_io - 1) Gf.one;
    match S.verify S.test_params inst ~io:bad_io proof with
    | Ok () -> Alcotest.failf "%s: accepted tampered io" name
    | Error _ -> ()
end

module Check_orion = Check_backend (Spartan)
module Check_fri = Check_backend (Spartan_fri)

let test_orion_backend_e2e () = Check_orion.run "spartan-orion" ~n:300 ~seed:17L
let test_fri_backend_e2e () = Check_fri.run "spartan-fri" ~n:300 ~seed:17L

let prop_cross_backend_random_circuits =
  QCheck.Test.make ~count:8 ~name:"both backends prove random circuits"
    QCheck.(pair (int_range 30 200) (int_range 0 1000))
    (fun (n, seed) ->
      let seed = Int64.of_int seed in
      let inst, asn = Synthetic.circuit ~n_constraints:n ~seed () in
      let io = R1cs.public_io inst asn in
      let po, _ = Spartan.prove Spartan.test_params inst asn in
      let pf, _ = Spartan_fri.prove Spartan_fri.test_params inst asn in
      Result.is_ok (Spartan.verify Spartan.test_params inst ~io po)
      && Result.is_ok (Spartan_fri.verify Spartan_fri.test_params inst ~io pf))

(* --- the FRI backend directly against the PCS contract --- *)

let test_fri_pcs_direct () =
  let rng = Rng.create 0xF121L in
  let num_vars = 6 in
  let evals = Array.init (1 lsl num_vars) (fun _ -> Gf.random rng) in
  let point = Array.init num_vars (fun _ -> Gf.random rng) in
  let params = Fri_pcs.test_params in
  let committed, cm = Fri_pcs.commit params (Rng.create 1L) evals in
  let transcript () =
    let t = Transcript.create "test-fri-pcs" in
    Fri_pcs.absorb_commitment t cm;
    t
  in
  let value, proof = Fri_pcs.open_at params committed (transcript ()) point in
  Alcotest.(check bool)
    "opened value is the MLE evaluation" true
    (Gf.equal value (Mle.eval evals point));
  (match Fri_pcs.verify params cm (transcript ()) point value proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid opening rejected: %s" (Zk_pcs.Verify_error.to_string e));
  (* Wrong value must fail. *)
  (match
     Fri_pcs.verify params cm (transcript ()) point (Gf.add value Gf.one) proof
   with
  | Ok () -> Alcotest.fail "accepted a wrong value"
  | Error _ -> ());
  (* Byte round-trip of commitment and proof. *)
  let buf = Buffer.create 256 in
  Fri_pcs.write_commitment buf cm;
  Fri_pcs.write_eval_proof buf proof;
  let r = Zk_pcs.Codec.reader (Buffer.to_bytes buf) in
  match (Fri_pcs.read_commitment r, Fri_pcs.read_eval_proof r) with
  | Ok cm', Ok proof' -> (
    match Fri_pcs.verify params cm' (transcript ()) point value proof' with
    | Ok () -> ()
    | Error e -> Alcotest.failf "round-tripped opening rejected: %s" (Zk_pcs.Verify_error.to_string e))
  | Error e, _ | _, Error e -> Alcotest.failf "round-trip decode failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_fri_pcs_degenerate () =
  (* A 1-variable polynomial: no sumcheck rounds on the witness of a tiny
     circuit is exercised above; here the PCS alone at L=1. *)
  let evals = [| Gf.of_int64 5L; Gf.of_int64 9L |] in
  let point = [| Gf.of_int64 42L |] in
  let params = Fri_pcs.test_params in
  let committed, cm = Fri_pcs.commit params (Rng.create 1L) evals in
  let transcript () =
    let t = Transcript.create "test-fri-tiny" in
    Fri_pcs.absorb_commitment t cm;
    t
  in
  let value, proof = Fri_pcs.open_at params committed (transcript ()) point in
  Alcotest.(check bool)
    "L=1 value" true
    (Gf.equal value (Mle.eval evals point));
  match Fri_pcs.verify params cm (transcript ()) point value proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "L=1 opening rejected: %s" (Zk_pcs.Verify_error.to_string e)

(* --- tagged serialization: round-trips, backend mismatch, unknown tag,
   legacy blobs --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_serialize_tagged () =
  let inst, asn = Synthetic.circuit ~n_constraints:200 ~seed:7L () in
  let io = R1cs.public_io inst asn in
  let orion_proof, _ = Spartan.prove Spartan.test_params inst asn in
  let ob = Spartan.proof_to_bytes orion_proof in
  let fri_proof, _ = Spartan_fri.prove Spartan_fri.test_params inst asn in
  let fb = Spartan_fri.proof_to_bytes fri_proof in
  (* Header sniffing. *)
  Alcotest.(check (result string string))
    "orion tag" (Ok "orion") (Result.map_error Zk_pcs.Verify_error.to_string (Serialize.backend_of_bytes ob));
  Alcotest.(check (result string string))
    "fri tag" (Ok "fri") (Result.map_error Zk_pcs.Verify_error.to_string (Serialize.backend_of_bytes fb));
  (* Round-trips through each backend's own codec. *)
  (match Serialize.proof_of_bytes ob with
  | Error e -> Alcotest.failf "orion round-trip failed: %s" (Zk_pcs.Verify_error.to_string e)
  | Ok p -> (
    match Spartan.verify Spartan.test_params inst ~io p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded orion proof rejected: %s" (Zk_pcs.Verify_error.to_string e)));
  (match Spartan_fri.proof_of_bytes fb with
  | Error e -> Alcotest.failf "fri round-trip failed: %s" (Zk_pcs.Verify_error.to_string e)
  | Ok p -> (
    match Spartan_fri.verify Spartan_fri.test_params inst ~io p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded fri proof rejected: %s" (Zk_pcs.Verify_error.to_string e)));
  (* A FRI blob fed to the Orion decoder is an error naming both backends,
     not a crash or a misparse. *)
  (match Serialize.proof_of_bytes fb with
  | Ok _ -> Alcotest.fail "orion decoder accepted a fri blob"
  | Error e ->
    let e = Zk_pcs.Verify_error.to_string e in
    Alcotest.(check bool)
      (Printf.sprintf "mismatch error mentions fri: %s" e)
      true (contains ~sub:"fri" e));
  (* Unknown tag byte. *)
  let unknown = Bytes.copy ob in
  Bytes.set unknown 8 '\xee';
  (match Serialize.proof_of_bytes unknown with
  | Ok _ -> Alcotest.fail "accepted unknown backend tag"
  | Error e ->
    Alcotest.(check bool)
      "unknown-tag error mentions the tag" true (contains ~sub:"0xee" (Zk_pcs.Verify_error.to_string e)));
  Alcotest.(check bool)
    "backend_of_bytes rejects unknown tag" true
    (Result.is_error (Serialize.backend_of_bytes unknown));
  (* Legacy NCAP1 blob: friendly error, and the sniffer still names orion. *)
  let legacy = Bytes.copy ob in
  Bytes.blit_string "NCAP1" 0 legacy 0 5;
  (match Serialize.proof_of_bytes legacy with
  | Ok _ -> Alcotest.fail "accepted legacy blob"
  | Error e ->
    Alcotest.(check bool)
      "legacy error mentions NCAP1" true (contains ~sub:"NCAP1" (Zk_pcs.Verify_error.to_string e)));
  Alcotest.(check (result string string))
    "legacy sniffs as orion" (Ok "orion")
    (Result.map_error Zk_pcs.Verify_error.to_string (Serialize.backend_of_bytes legacy))

(* --- Orion parameter validation --- *)

let test_orion_param_validation () =
  (match Orion.validate_params Orion.default_params with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "default params rejected: %s" (Orion.param_error_to_string e));
  let bad_rows = { Orion.default_params with Orion.rows = 12 } in
  (match Orion.validate_params bad_rows with
  | Error (Orion.Rows_not_power_of_two 12) -> ()
  | Error e ->
    Alcotest.failf "wrong error for rows=12: %s" (Orion.param_error_to_string e)
  | Ok () -> Alcotest.fail "accepted rows=12");
  (match Orion.validate_params { Orion.default_params with Orion.rows = 0 } with
  | Error (Orion.Rows_not_positive 0) -> ()
  | Error e ->
    Alcotest.failf "wrong error for rows=0: %s" (Orion.param_error_to_string e)
  | Ok () -> Alcotest.fail "accepted rows=0");
  (match
     Orion.validate_params
       { Orion.default_params with Orion.proximity_count = 0 }
   with
  | Error (Orion.Proximity_count_not_positive 0) -> ()
  | Error e ->
    Alcotest.failf "wrong error for proximity=0: %s"
      (Orion.param_error_to_string e)
  | Ok () -> Alcotest.fail "accepted proximity_count=0");
  (* Invalid params are rejected at commit time, loudly. *)
  let evals = Array.init 64 (fun i -> Gf.of_int i) in
  match Orion.commit bad_rows (Rng.create 1L) evals with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "commit accepted invalid params"

let test_fri_param_validation () =
  (match Fri_pcs.validate_params Fri_pcs.default_params with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "default fri params rejected: %s"
      (Fri_pcs.param_error_to_string e));
  (match Fri_pcs.validate_params { Fri_pcs.blowup_log2 = 0; num_queries = 4 } with
  | Error (Fri_pcs.Blowup_out_of_range 0) -> ()
  | _ -> Alcotest.fail "accepted blowup_log2=0");
  match Fri_pcs.validate_params { Fri_pcs.blowup_log2 = 2; num_queries = 0 } with
  | Error (Fri_pcs.Queries_not_positive 0) -> ()
  | _ -> Alcotest.fail "accepted num_queries=0"

(* --- Engine.Config parsing --- *)

let test_engine_config () =
  let lookup env k = List.assoc_opt k env in
  (match Engine.Config.parse ~lookup:(lookup []) with
  | Ok c -> Alcotest.(check bool) "empty env is default" true (c = Engine.Config.default)
  | Error e -> Alcotest.failf "empty env rejected: %s" e);
  (match
     Engine.Config.parse
       ~lookup:
         (lookup
            [
              ("NOCAP_DOMAINS", "3");
              ("NOCAP_GC_MINOR_MB", "64");
              ("NOCAP_SPIN_US", "0");
              ("NOCAP_NATIVE", "scalar");
              ("NOCAP_STREAM_BUDGET_MB", "256");
            ])
   with
  | Ok
      {
        Engine.Config.domains = Some 3;
        gc_minor_mb = Some 64;
        spin_us = Some 0;
        native = Some Nocap_native.Native.Scalar;
        stream_budget_mb = Some 256;
      } ->
    ()
  | Ok _ -> Alcotest.fail "parsed values wrong"
  | Error e -> Alcotest.failf "valid env rejected: %s" e);
  List.iter
    (fun v ->
      match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_DOMAINS", v) ]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted NOCAP_DOMAINS=%s" v)
    [ "zero"; "-2"; "0"; "" ];
  (* Spin budgets accept 0 (park immediately) but nothing negative or
     malformed. *)
  List.iter
    (fun v ->
      match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_SPIN_US", v) ]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted NOCAP_SPIN_US=%s" v)
    [ "-1"; "ten"; "" ];
  (match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_GC_MINOR_MB", "1.5") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted fractional NOCAP_GC_MINOR_MB");
  (* NOCAP_NATIVE accepts the documented grammar and rejects the rest. *)
  List.iter
    (fun (v, m) ->
      match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_NATIVE", v) ]) with
      | Ok { Engine.Config.native = Some m'; _ } when m' = m -> ()
      | Ok _ -> Alcotest.failf "NOCAP_NATIVE=%s parsed wrong" v
      | Error e -> Alcotest.failf "NOCAP_NATIVE=%s rejected: %s" v e)
    Nocap_native.Native.
      [
        ("0", Off); ("off", Off); ("OFF", Off); ("scalar", Scalar); ("1", Simd);
        ("on", Simd); ("auto", Simd); ("simd", Simd);
      ];
  match Engine.Config.parse ~lookup:(lookup [ ("NOCAP_NATIVE", "fast") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted NOCAP_NATIVE=fast"

let suite =
  [
    Alcotest.test_case "golden proof bytes across domain counts" `Slow
      test_golden_bytes;
    Alcotest.test_case "engine context never changes bytes" `Quick
      test_engine_invariance;
    Alcotest.test_case "orion backend end-to-end" `Quick test_orion_backend_e2e;
    Alcotest.test_case "fri backend end-to-end" `Quick test_fri_backend_e2e;
    QCheck_alcotest.to_alcotest prop_cross_backend_random_circuits;
    Alcotest.test_case "fri pcs direct contract" `Quick test_fri_pcs_direct;
    Alcotest.test_case "fri pcs one variable" `Quick test_fri_pcs_degenerate;
    Alcotest.test_case "tagged serialization" `Quick test_serialize_tagged;
    Alcotest.test_case "orion param validation" `Quick
      test_orion_param_validation;
    Alcotest.test_case "fri param validation" `Quick test_fri_param_validation;
    Alcotest.test_case "engine config parsing" `Quick test_engine_config;
  ]
