(* Workload circuit generators: each must produce a satisfied instance whose
   software reference matches the circuit semantics, and the density ordering
   must match the calibrated factors. *)

module Gf = Zk_field.Gf
module R1cs = Zk_r1cs.R1cs
module Benchmarks = Zk_workloads.Benchmarks
module Cipher = Zk_workloads.Cipher
module Keccak_circuit = Zk_workloads.Keccak_circuit
module Modexp = Zk_workloads.Modexp
module Litmus = Zk_workloads.Litmus_circuit
module Synthetic = Zk_workloads.Synthetic
module Spartan = Zk_spartan.Spartan
module Rng = Zk_util.Rng

let check_satisfied name (inst, asn) =
  Alcotest.(check bool) (name ^ " satisfied") true (R1cs.satisfied inst asn);
  (inst, asn)

let test_cipher_reference () =
  (* The nonlinear S-box must actually be nonlinear and a fixed point of
     nothing trivial; spot check a couple of known compositions. *)
  let plaintext = Array.init 16 (fun i -> (i * 17) land 0xff) in
  let keys = [| Array.make 16 0 |] in
  let once = Cipher.reference ~plaintext ~keys in
  Alcotest.(check bool) "permutation changes state" true (once <> plaintext);
  (* XOR with the same key twice via two rounds differs from zero rounds
     (rounds also substitute and mix). *)
  let twice = Cipher.reference ~plaintext ~keys:[| Array.make 16 0; Array.make 16 0 |] in
  Alcotest.(check bool) "two rounds differ from one" true (once <> twice)

let test_cipher_circuit () =
  let inst, asn = check_satisfied "cipher" (Cipher.circuit ~rounds:3 ~blocks:2 ~seed:1L ()) in
  Alcotest.(check bool) "nontrivial size" true (inst.R1cs.num_constraints > 1000);
  (* Tampering with a witness key bit must break satisfaction. *)
  asn.R1cs.w.(3) <- Gf.sub Gf.one asn.R1cs.w.(3);
  Alcotest.(check bool) "tampered key fails" false (R1cs.satisfied inst asn)

let test_keccak_reference_vs_circuit () =
  (* The builder recomputes the same values as the reference: circuit outputs
     are constrained against reference outputs inside [circuit], so a
     satisfied instance proves agreement. *)
  ignore (check_satisfied "keccak" (Keccak_circuit.circuit ~rounds:4 ~blocks:1 ~seed:2L ()))

let test_keccak_reference_diffusion () =
  let st = Array.make 25 0 in
  let st' = Array.copy st in
  st'.(7) <- 1;
  let out = Keccak_circuit.reference ~rounds:4 ~lane_bits:8 st in
  let out' = Keccak_circuit.reference ~rounds:4 ~lane_bits:8 st' in
  let diff = ref 0 in
  Array.iteri (fun i a -> if a <> out'.(i) then incr diff) out;
  Alcotest.(check bool) "single-bit flip diffuses widely" true (!diff > 12)

let test_modexp () =
  Alcotest.(check int) "3^17 mod 1000004..." (Modexp.reference ~x:3 ~e:17 ~n:3329)
    (let rec pow acc k = if k = 0 then acc else pow (acc * 3 mod 3329) (k - 1) in
     pow 1 17);
  ignore (check_satisfied "modexp" (Modexp.circuit ~instances:2 ~seed:3L ()))

let test_auction () =
  let inst, asn =
    check_satisfied "auction" (Zk_workloads.Auction_circuit.circuit ~bids:10 ~seed:4L ())
  in
  (* The winning price is the last public input. *)
  Alcotest.(check bool) "has public output" true (inst.R1cs.num_io >= 2);
  ignore asn

let test_litmus () =
  let rng = Rng.create 5L in
  let txs = Litmus.random_transactions rng ~rows:8 ~count:6 in
  Alcotest.(check int) "tx count" 6 (List.length txs);
  ignore (check_satisfied "litmus" (Litmus.circuit ~rows:8 ~transactions:txs ~seed:6L ()));
  (* apply: writes land, reads do not. *)
  let st = [| 1; 2; 3 |] in
  let out =
    Litmus.apply st
      [ { Litmus.row_a = 0; op_a = Litmus.Write 9; row_b = 2; op_b = Litmus.Read } ]
  in
  Alcotest.(check (array int)) "apply" [| 9; 2; 3 |] out

let test_synthetic () =
  let inst, asn =
    check_satisfied "synthetic" (Synthetic.circuit ~n_constraints:500 ~seed:7L ())
  in
  Alcotest.(check int) "constraint count" 500 inst.R1cs.num_constraints;
  ignore asn;
  (* Band structure: nonzeros stay near the diagonal. *)
  let max_band, _ = Zk_r1cs.Sparse.bandwidth_profile inst.R1cs.a in
  Alcotest.(check bool) "banded" true (max_band < 600);
  (* Density knob widens rows. *)
  let dense, _ = Synthetic.circuit ~n_constraints:500 ~row_nnz:6 ~seed:8L () in
  Alcotest.(check bool) "row_nnz increases density" true
    (Benchmarks.measured_density dense > Benchmarks.measured_density inst)

let test_benchmark_table () =
  Alcotest.(check int) "five benchmarks" 5 (List.length Benchmarks.all);
  let aes = Benchmarks.find "aes" in
  Alcotest.(check bool) "AES is 16M" true (aes.Benchmarks.r1cs_size = 16.0e6);
  Alcotest.(check bool) "Auction densest" true
    (List.for_all
       (fun (b : Benchmarks.t) ->
         b.Benchmarks.density <= (Benchmarks.find "auction").Benchmarks.density)
       Benchmarks.all);
  (* Every generator yields a satisfiable instance at small scale. *)
  List.iter
    (fun (b : Benchmarks.t) ->
      let inst, asn = b.Benchmarks.generate 2 in
      Alcotest.(check bool) (b.Benchmarks.name ^ " generates") true (R1cs.satisfied inst asn))
    Benchmarks.all

let test_generators_density_ordering () =
  (* Every generated matrix averages at least one nonzero per row, and the
     gadget circuits (packing rows, comparators) are denser than the sparse
     synthetic chains. *)
  let density (b : Benchmarks.t) scale =
    let inst, _ = b.Benchmarks.generate scale in
    Benchmarks.measured_density inst
  in
  List.iter
    (fun (b : Benchmarks.t) ->
      Alcotest.(check bool) (b.Benchmarks.name ^ " has nonzeros") true (density b 4 > 0.9))
    Benchmarks.all;
  let sparse, _ = Synthetic.circuit ~n_constraints:300 ~row_nnz:1 ~seed:99L () in
  Alcotest.(check bool) "gadget circuits denser than sparse synthetic" true
    (density (Benchmarks.find "auction") 16 > Benchmarks.measured_density sparse)

let test_workload_proves () =
  (* End to end: a workload circuit through the real SNARK. *)
  let inst, asn = Modexp.circuit ~instances:1 ~seed:9L () in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "modexp proof failed: %s" (Zk_pcs.Verify_error.to_string e)

let suite =
  [
    Alcotest.test_case "cipher reference" `Quick test_cipher_reference;
    Alcotest.test_case "cipher circuit" `Quick test_cipher_circuit;
    Alcotest.test_case "keccak circuit" `Quick test_keccak_reference_vs_circuit;
    Alcotest.test_case "keccak diffusion" `Quick test_keccak_reference_diffusion;
    Alcotest.test_case "modexp" `Quick test_modexp;
    Alcotest.test_case "auction" `Quick test_auction;
    Alcotest.test_case "litmus" `Quick test_litmus;
    Alcotest.test_case "synthetic" `Quick test_synthetic;
    Alcotest.test_case "benchmark table" `Quick test_benchmark_table;
    Alcotest.test_case "density ordering" `Quick test_generators_density_ordering;
    Alcotest.test_case "workload proves end-to-end" `Quick test_workload_proves;
  ]
