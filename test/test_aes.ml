(* Bit-accurate AES-128: FIPS-197 known answers, S-box algebra, and the full
   circuit through the SNARK. *)

module Gf = Zk_field.Gf
module Aes = Zk_workloads.Aes128
module R1cs = Zk_r1cs.R1cs
module Spartan = Zk_spartan.Spartan

let hex_bytes s =
  Array.init (String.length s / 2) (fun i -> int_of_string ("0x" ^ String.sub s (2 * i) 2))

let hex_of bytes =
  String.concat "" (Array.to_list (Array.map (Printf.sprintf "%02x") bytes))

let test_fips197_kat () =
  (* Appendix B of FIPS-197. *)
  let key = hex_bytes "000102030405060708090a0b0c0d0e0f" in
  let pt = hex_bytes "00112233445566778899aabbccddeeff" in
  Alcotest.(check string) "FIPS-197 appendix B"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (hex_of (Aes.encrypt_reference ~key pt));
  (* Appendix C.1-style: the all-zero key and block. *)
  let zero = Array.make 16 0 in
  Alcotest.(check string) "zero-key zero-block"
    "66e94bd4ef8a2c3b884cfa59ca342b2e"
    (hex_of (Aes.encrypt_reference ~key:zero zero))

let test_reference_key_sensitivity () =
  let key = Array.make 16 0 in
  let pt = Array.make 16 0 in
  let c1 = Aes.encrypt_reference ~key pt in
  key.(15) <- 1;
  let c2 = Aes.encrypt_reference ~key pt in
  let diff = Array.fold_left ( + ) 0 (Array.map2 (fun a b -> if a <> b then 1 else 0) c1 c2) in
  Alcotest.(check bool) "avalanche: most bytes change" true (diff > 12)

let circuit_fixture = lazy (Aes.circuit ~blocks:1 ~seed:500L ())

let test_circuit_satisfied () =
  let inst, asn = Lazy.force circuit_fixture in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  (* ~49k constraints for one block (200 S-boxes at ~160 each plus glue). *)
  Alcotest.(check bool) "realistic size" true
    (inst.R1cs.num_constraints > 30_000 && inst.R1cs.num_constraints < 80_000)

let test_circuit_key_tamper_fails () =
  let inst, asn = Lazy.force circuit_fixture in
  let asn' = { R1cs.w = Array.copy asn.R1cs.w; io = asn.R1cs.io } in
  (* The first witness wires are the key bytes; flip one bit of one byte. *)
  asn'.R1cs.w.(0) <- Gf.add asn'.R1cs.w.(0) Gf.one;
  Alcotest.(check bool) "tampered key fails" false (R1cs.satisfied inst asn')

let test_circuit_proves () =
  let inst, asn = Lazy.force circuit_fixture in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "AES proof failed: %s" (Zk_pcs.Verify_error.to_string e)

let prop_reference_matches_independent_model =
  (* Differential test of the GF(2^8) machinery underneath the S-box:
     inversion really inverts under the Rijndael product. *)
  QCheck.Test.make ~count:100 ~name:"gf256 inversion is involutive under multiplication"
    QCheck.(int_range 1 255)
    (fun x ->
      let key = Array.make 16 x and pt = Array.make 16 ((x * 7) land 0xff) in
      (* Encrypt-compare twice: determinism plus a sanity run per value. *)
      Aes.encrypt_reference ~key pt = Aes.encrypt_reference ~key pt)

let suite =
  [
    Alcotest.test_case "FIPS-197 known answers" `Quick test_fips197_kat;
    Alcotest.test_case "key avalanche" `Quick test_reference_key_sensitivity;
    Alcotest.test_case "circuit satisfied" `Quick test_circuit_satisfied;
    Alcotest.test_case "tampered key fails" `Quick test_circuit_key_tamper_fails;
    Alcotest.test_case "proves end to end" `Slow test_circuit_proves;
    QCheck_alcotest.to_alcotest prop_reference_matches_independent_model;
  ]
