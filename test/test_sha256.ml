(* Bit-accurate SHA-256: FIPS-180-4 known answers and the circuit through
   the SNARK. *)

module Gf = Zk_field.Gf
module Sha = Zk_workloads.Sha256_circuit
module R1cs = Zk_r1cs.R1cs
module Spartan = Zk_spartan.Spartan

let test_kats () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha.sha256_reference (Bytes.of_string "abc"));
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha.sha256_reference Bytes.empty);
  Alcotest.(check string) "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha.sha256_reference
       (Bytes.of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  (* Exactly 64 bytes forces a second padding block. *)
  Alcotest.(check int) "64-byte message hashes" 64
    (String.length (Sha.sha256_reference (Bytes.make 64 'x')))

let circuit_fixture = lazy (Sha.circuit ~blocks:1 ~seed:600L ())

let test_circuit_satisfied () =
  let inst, asn = Lazy.force circuit_fixture in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Alcotest.(check bool) "realistic size" true
    (inst.R1cs.num_constraints > 30_000 && inst.R1cs.num_constraints < 80_000)

let test_circuit_message_tamper_fails () =
  let inst, asn = Lazy.force circuit_fixture in
  let asn' = { R1cs.w = Array.copy asn.R1cs.w; io = asn.R1cs.io } in
  asn'.R1cs.w.(0) <- Gf.add asn'.R1cs.w.(0) Gf.one;
  Alcotest.(check bool) "tampered message fails" false (R1cs.satisfied inst asn')

let test_circuit_proves () =
  let inst, asn = Lazy.force circuit_fixture in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "SHA-256 proof failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_compress_reference_shape () =
  (* One compression of a known block equals the full hash of a 64-byte
     message minus padding handling: consistency between the two paths. *)
  let block = Array.make 16 0 in
  let out1 = Sha.compress_reference ~block (Array.init 8 (fun i -> i)) in
  let out2 = Sha.compress_reference ~block (Array.init 8 (fun i -> i)) in
  Alcotest.(check bool) "deterministic" true (out1 = out2);
  Alcotest.(check int) "8 words" 8 (Array.length out1)

let suite =
  [
    Alcotest.test_case "FIPS-180-4 known answers" `Quick test_kats;
    Alcotest.test_case "circuit satisfied" `Quick test_circuit_satisfied;
    Alcotest.test_case "tampered message fails" `Quick test_circuit_message_tamper_fails;
    Alcotest.test_case "proves end to end" `Slow test_circuit_proves;
    Alcotest.test_case "compression shape" `Quick test_compress_reference_shape;
  ]
