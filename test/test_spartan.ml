(* End-to-end Spartan+Orion SNARK tests: completeness on real circuits,
   rejection of every kind of forgery we can construct. *)

module Gf = Zk_field.Gf
module Spartan = Zk_spartan.Spartan
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module R1cs = Zk_r1cs.R1cs
module Rng = Zk_util.Rng

let params = Spartan.test_params

(* x * y = product, x + y = sum, with (product, sum) public. *)
let factor_circuit x y =
  let b = Builder.create () in
  let vx = Builder.witness b (Gf.of_int x) in
  let vy = Builder.witness b (Gf.of_int y) in
  let prod = Builder.input b (Gf.of_int (x * y)) in
  let sum = Builder.input b (Gf.of_int (x + y)) in
  Builder.constrain b (Builder.lc_var vx) (Builder.lc_var vy) (Builder.lc_var prod);
  Builder.constrain b
    (Builder.lc_add (Builder.lc_var vx) (Builder.lc_var vy))
    (Builder.lc_var Builder.one)
    (Builder.lc_var sum);
  Builder.finalize b

(* A deeper circuit: prove knowledge of a satisfying assignment to a chain of
   multiply/add/compare gadgets. *)
let chain_circuit seed steps =
  let rng = Rng.create (Int64.of_int seed) in
  let b = Builder.create () in
  let cur = ref (Builder.witness b (Gf.of_int (2 + Rng.int rng 100))) in
  for _ = 1 to steps do
    let other = Builder.witness b (Gf.of_int (1 + Rng.int rng 100)) in
    cur :=
      (match Rng.int rng 3 with
      | 0 -> Gadgets.mul b !cur other
      | 1 -> Gadgets.add b !cur other
      | _ -> Gadgets.select b ~cond:(Gadgets.is_zero b other) !cur other)
  done;
  let out = Builder.input b (Builder.value b !cur) in
  Gadgets.assert_equal b (Builder.lc_var !cur) (Builder.lc_var out);
  Builder.finalize b

let prove_verify inst asn =
  let proof, _stats = Spartan.prove params inst asn in
  Spartan.verify params inst ~io:(R1cs.public_io inst asn) proof

let test_completeness_small () =
  let inst, asn = factor_circuit 3 5 in
  match prove_verify inst asn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_completeness_chain () =
  List.iter
    (fun steps ->
      let inst, asn = chain_circuit steps steps in
      match prove_verify inst asn with
      | Ok () -> ()
      | Error e -> Alcotest.failf "steps=%d: %s" steps (Zk_pcs.Verify_error.to_string e))
    [ 5; 40; 200 ]

let test_completeness_multirep () =
  (* The paper's 3-repetition soundness amplification. *)
  let params3 = { params with Spartan.repetitions = 3 } in
  let inst, asn = chain_circuit 7 30 in
  let proof, _ = Spartan.prove params3 inst asn in
  match Spartan.verify params3 inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "3-rep verify failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_completeness_default_rows () =
  (* Paper configuration: 128 Orion rows, real circuit padded to 2^11. *)
  let params128 =
    { Spartan.pcs = Zk_orion.Orion.default_params; repetitions = 1 }
  in
  let inst, asn = chain_circuit 11 300 in
  let proof, _ = Spartan.prove params128 inst asn in
  match Spartan.verify params128 inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "128-row verify failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_wrong_io_rejected () =
  let inst, asn = factor_circuit 3 5 in
  let proof, _ = Spartan.prove params inst asn in
  let io = R1cs.public_io inst asn in
  io.(1) <- Gf.of_int 16;
  (* claim the product is 16 *)
  match Spartan.verify params inst ~io proof with
  | Ok () -> Alcotest.fail "accepted proof for wrong public input"
  | Error _ -> ()

let test_unsatisfied_rejected_at_prove () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 3) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var x) (Builder.lc_const (Gf.of_int 9));
  let inst, asn = Builder.finalize b in
  asn.R1cs.w.(0) <- Gf.of_int 4;
  Alcotest.(check bool) "prove raises" true
    (try
       ignore (Spartan.prove params inst asn);
       false
     with Invalid_argument _ -> true)

let test_tampered_proof_rejected () =
  let inst, asn = chain_circuit 3 20 in
  let io = R1cs.public_io inst asn in
  let tamper_and_check name mutate =
    let proof, _ = Spartan.prove params inst asn in
    mutate proof;
    match Spartan.verify params inst ~io proof with
    | Ok () -> Alcotest.failf "accepted proof with tampered %s" name
    | Error _ -> ()
  in
  tamper_and_check "va" (fun p ->
      let rep = p.Spartan.reps.(0) in
      p.Spartan.reps.(0) <- { rep with Spartan.va = Gf.add rep.Spartan.va Gf.one });
  tamper_and_check "vw" (fun p ->
      let rep = p.Spartan.reps.(0) in
      p.Spartan.reps.(0) <- { rep with Spartan.vw = Gf.add rep.Spartan.vw Gf.one });
  tamper_and_check "sc1 round" (fun p ->
      let g = p.Spartan.reps.(0).Spartan.sc1.Zk_sumcheck.Sumcheck.round_polys.(0) in
      g.(0) <- Gf.add g.(0) Gf.one);
  tamper_and_check "sc2 round" (fun p ->
      let g = p.Spartan.reps.(0).Spartan.sc2.Zk_sumcheck.Sumcheck.round_polys.(0) in
      g.(2) <- Gf.add g.(2) Gf.one);
  tamper_and_check "orion u" (fun p ->
      let u = p.Spartan.reps.(0).Spartan.w_open.Zk_orion.Orion.u in
      u.(0) <- Gf.add u.(0) Gf.one)

let test_proof_for_different_instance_rejected () =
  (* A proof for (3,5) must not verify against the instance for (2,8),
     which has different public io but identical circuit shape. *)
  let inst1, asn1 = factor_circuit 3 5 in
  let inst2, asn2 = factor_circuit 2 8 in
  let proof, _ = Spartan.prove params inst1 asn1 in
  match Spartan.verify params inst2 ~io:(R1cs.public_io inst2 asn2) proof with
  | Ok () -> Alcotest.fail "accepted proof against different public input"
  | Error _ -> ()

let test_proof_size_positive () =
  let inst, asn = chain_circuit 9 50 in
  let proof, _ = Spartan.prove params inst asn in
  let sz = Spartan.proof_size_bytes params proof in
  Alcotest.(check bool) "positive and plausible" true (sz > 1000);
  (* 3 repetitions triple (almost) the proof size. *)
  let params3 = { params with Spartan.repetitions = 3 } in
  let proof3, _ = Spartan.prove params3 inst asn in
  let sz3 = Spartan.proof_size_bytes params3 proof3 in
  Alcotest.(check bool) "3 reps bigger" true (sz3 > 2 * sz)

let test_stats_populated () =
  let inst, asn = chain_circuit 5 60 in
  let _, stats = Spartan.prove params inst asn in
  Alcotest.(check bool) "sumcheck mults" true (stats.Spartan.sumcheck_mults > 0);
  Alcotest.(check bool) "spmv mults" true (stats.Spartan.spmv_mults >= 2 * R1cs.nnz inst);
  Alcotest.(check bool) "hashes" true (stats.Spartan.transcript_hashes > 0)

let prop_random_circuits_roundtrip =
  QCheck.Test.make ~count:10 ~name:"random circuits prove and verify"
    QCheck.(int_range 1 80)
    (fun steps ->
      let inst, asn = chain_circuit (steps * 13) steps in
      match prove_verify inst asn with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "completeness: factoring" `Quick test_completeness_small;
    Alcotest.test_case "completeness: gadget chains" `Quick test_completeness_chain;
    Alcotest.test_case "completeness: 3 repetitions" `Quick test_completeness_multirep;
    Alcotest.test_case "completeness: 128-row Orion" `Quick test_completeness_default_rows;
    Alcotest.test_case "wrong io rejected" `Quick test_wrong_io_rejected;
    Alcotest.test_case "unsatisfied witness rejected" `Quick test_unsatisfied_rejected_at_prove;
    Alcotest.test_case "tampered proofs rejected" `Quick test_tampered_proof_rejected;
    Alcotest.test_case "different instance rejected" `Quick test_proof_for_different_instance_rejected;
    Alcotest.test_case "proof size" `Quick test_proof_size_positive;
    Alcotest.test_case "prover stats" `Quick test_stats_populated;
    QCheck_alcotest.to_alcotest prop_random_circuits_roundtrip;
  ]
