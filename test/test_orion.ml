(* Orion polynomial-commitment tests: commit/open round trips, rejection of
   forgeries, proof-size accounting, expander-code configuration. *)

module Gf = Zk_field.Gf
module Orion = Zk_orion.Orion
module Mle = Zk_poly.Mle
module Transcript = Zk_hash.Transcript
module Rng = Zk_util.Rng

let small_params =
  (* Fewer rows so tests exercise multi-column matrices at small sizes. *)
  { Orion.default_params with Orion.rows = 8 }

let random_table rng l = Array.init (1 lsl l) (fun _ -> Gf.random rng)

let roundtrip ?(params = small_params) ~seed l =
  let rng = Rng.create seed in
  let table = random_table rng l in
  let committed, cm = Orion.commit params rng table in
  let point = Array.init l (fun _ -> Gf.random rng) in
  let pt = Transcript.create "orion-test" in
  Orion.absorb_commitment pt cm;
  let value, proof = Orion.prove_eval params committed pt point in
  (* The opened value is the MLE evaluation. *)
  Alcotest.(check bool) "value = MLE eval" true (Gf.equal value (Mle.eval table point));
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  (match Orion.verify_eval params cm vt point value proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify failed: %s" (Zk_pcs.Verify_error.to_string e));
  (table, cm, point, value, proof)

let test_roundtrip_sizes () =
  List.iter (fun l -> ignore (roundtrip ~seed:(Int64.of_int (50 + l)) l)) [ 3; 4; 6; 8; 10 ]

let test_roundtrip_default_rows () =
  (* 2^10 table with the paper's 128 rows: 128 x 8 matrix. *)
  ignore (roundtrip ~params:Orion.default_params ~seed:60L 10)

let test_roundtrip_no_zk () =
  let params = { small_params with Orion.zk = false } in
  ignore (roundtrip ~params ~seed:61L 6)

let test_wrong_value_rejected () =
  let _, cm, point, value, proof = roundtrip ~seed:62L 6 in
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval small_params cm vt point (Gf.add value Gf.one) proof with
  | Ok () -> Alcotest.fail "accepted a wrong evaluation"
  | Error _ -> ()

let test_tampered_u_rejected () =
  let _, cm, point, value, proof = roundtrip ~seed:63L 6 in
  proof.Orion.u.(0) <- Gf.add proof.Orion.u.(0) Gf.one;
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval small_params cm vt point value proof with
  | Ok () -> Alcotest.fail "accepted a tampered combination"
  | Error _ -> ()

let test_tampered_column_rejected () =
  let _, cm, point, value, proof = roundtrip ~seed:64L 6 in
  let j, col, path = proof.Orion.columns.(5) in
  col.(0) <- Gf.add col.(0) Gf.one;
  proof.Orion.columns.(5) <- (j, col, path);
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval small_params cm vt point value proof with
  | Ok () -> Alcotest.fail "accepted a tampered column"
  | Error _ -> ()

let test_wrong_point_rejected () =
  let _, cm, point, value, proof = roundtrip ~seed:65L 6 in
  let point' = Array.copy point in
  point'.(0) <- Gf.add point'.(0) Gf.one;
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval small_params cm vt point' value proof with
  | Ok () -> Alcotest.fail "accepted a wrong point"
  | Error _ -> ()

let test_proximity_masking_hides_rows () =
  (* With zk on, the revealed proximity vectors must differ from the raw
     rho-combination of the data rows (they are additively masked). *)
  let rng = Rng.create 66L in
  let l = 6 in
  let table = random_table rng l in
  let committed, cm = Orion.commit small_params rng table in
  let pt = Transcript.create "orion-test" in
  Orion.absorb_commitment pt cm;
  let point = Array.init l (fun _ -> Gf.random rng) in
  let _, proof = Orion.prove_eval small_params committed pt point in
  (* Reconstruct the unmasked combination with the same transcript schedule. *)
  let vt = Transcript.create "orion-test" in
  Orion.absorb_commitment vt cm;
  Transcript.absorb_gf vt "orion/point" point;
  let rows = cm.Orion.mat_rows and cols = cm.Orion.mat_cols in
  let rho = Transcript.challenge_gf_vec vt "orion/rho" rows in
  let raw = Array.make cols Gf.zero in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      raw.(c) <- Gf.add raw.(c) (Gf.mul rho.(r) table.((r * cols) + c))
    done
  done;
  let masked = proof.Orion.proximity.(0) in
  Alcotest.(check bool) "first proximity vector is masked" true
    (Array.exists2 (fun a b -> not (Gf.equal a b)) raw masked)

let test_proof_size () =
  let _, cm, _, _, proof = roundtrip ~seed:67L 10 in
  let sz = Orion.proof_size_bytes small_params cm proof in
  (* u (128 cols) + 4 proximity vectors + 189 columns x (12 elems + path). *)
  Alcotest.(check bool) "plausible size" true (sz > 10_000 && sz < 3_000_000);
  (* Tighter: recompute from first principles. *)
  let cols = cm.Orion.mat_cols in
  let rows = cm.Orion.mat_rows + small_params.Orion.proximity_count in
  let path_len = Zk_merkle.Merkle.path_length (4 * cols) in
  let expected =
    (8 * cols) + (4 * 8 * cols) + (189 * (8 + (8 * rows) + (32 * path_len)))
  in
  Alcotest.(check int) "exact size" expected sz

let test_expander_code_roundtrip () =
  (* Orion over the expander code (the pre-Shockwave configuration used by
     the Sec. VIII-C ablation) must also verify. *)
  let params =
    { Orion.rows = 8; code = (module Zk_ecc.Expander); proximity_count = 4; zk = true }
  in
  ignore (roundtrip ~params ~seed:68L 8)

let suite =
  [
    Alcotest.test_case "roundtrip across sizes" `Quick test_roundtrip_sizes;
    Alcotest.test_case "roundtrip 128 rows" `Quick test_roundtrip_default_rows;
    Alcotest.test_case "roundtrip without zk" `Quick test_roundtrip_no_zk;
    Alcotest.test_case "wrong value rejected" `Quick test_wrong_value_rejected;
    Alcotest.test_case "tampered u rejected" `Quick test_tampered_u_rejected;
    Alcotest.test_case "tampered column rejected" `Quick test_tampered_column_rejected;
    Alcotest.test_case "wrong point rejected" `Quick test_wrong_point_rejected;
    Alcotest.test_case "proximity masking" `Quick test_proximity_masking_hides_rows;
    Alcotest.test_case "proof size accounting" `Quick test_proof_size;
    Alcotest.test_case "expander-code configuration" `Quick test_expander_code_roundtrip;
  ]
