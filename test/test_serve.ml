(* The fault-tolerant proving service (DESIGN.md Sec. 15) and its kernel
   substrate: cooperative cancellation must be honored by every streaming
   kernel and must leave the shared pool reusable; deadline-expired jobs
   must report Deadline_exceeded (never a success, never a hang); retried
   jobs must produce proofs byte-identical to the offline prover; admission
   control must classify overflow and malformed input; and the PCS
   committed-state lifecycle must tolerate double frees. The service
   properties run as QCheck random sweeps over shared long-lived service
   instances (shut down by the final cleanup case, which also checks that
   no spill files survived). *)

module Gf = Zk_field.Gf
module Spill = Nocap_vec.Spill
module Pool = Nocap_parallel.Pool
module Rng = Zk_util.Rng
module Engine = Zk_pcs.Engine
module Transcript = Zk_hash.Transcript
module Sumcheck = Zk_sumcheck.Sumcheck
module Orion = Zk_orion.Orion
module Spartan = Zk_spartan.Spartan
module Synthetic = Zk_workloads.Synthetic
module Serve = Nocap_serve.Serve
module Job_error = Nocap_serve.Job_error
module Runtime_faults = Nocap_faults.Runtime_faults

let qcheck ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Offline oracle: the byte-identity reference for every service proof.
   Same params and deterministic circuit generation as the service. *)
let oracle : (string * int, bytes) Hashtbl.t = Hashtbl.create 8

let offline_bytes ~workload ~scale =
  match Hashtbl.find_opt oracle (workload, scale) with
  | Some b -> b
  | None ->
    let inst, asn =
      match Serve.generate_workload ~workload ~scale with
      | Ok ia -> ia
      | Error e -> Alcotest.failf "oracle generate: %s" (Job_error.to_string e)
    in
    let proof, _ = Spartan.prove Spartan.test_params inst asn in
    let b = Spartan.proof_to_bytes proof in
    Hashtbl.add oracle (workload, scale) b;
    b

let submit_ok srv req =
  match Serve.submit srv req with
  | Ok id -> id
  | Error e -> Alcotest.failf "submit rejected: %s" (Job_error.to_string e)

let prove_req ?deadline_s ?(tenant = "test") workload scale =
  { Serve.tenant; workload; scale; kind = Serve.Prove; deadline_s }

(* --- shared service instances (created on first use, shut down by the
   cleanup case at the end of the suite) ---------------------------------- *)

let shared = ref []

let make_shared config fault_hook =
  let srv = Serve.create ?fault_hook ~config () in
  shared := srv :: !shared;
  srv

(* Every attempt sleeps far past any deadline the property picks. *)
let slow_srv =
  lazy
    (make_shared
       {
         Serve.default_config with
         Serve.capacity = 64;
         runners = 2;
         params = Spartan.test_params;
       }
       (Some
          (Runtime_faults.hook
             {
               Runtime_faults.none with
               Runtime_faults.slow_every = 1;
               slow_s = 0.12;
               first_attempt_only = false;
             })))

(* Every first attempt crashes; retries must recover. *)
let crash_srv =
  lazy
    (make_shared
       {
         Serve.default_config with
         Serve.capacity = 64;
         runners = 2;
         max_retries = 2;
         backoff_base_s = 0.002;
         backoff_max_s = 0.02;
         params = Spartan.test_params;
       }
       (Some (Runtime_faults.hook { Runtime_faults.none with Runtime_faults.crash_every = 1 })))

(* No faults, but a memory budget that demotes the synthetic jobs to the
   streaming prover — long enough in flight to cancel mid-kernel. *)
let stream_srv =
  lazy
    (make_shared
       {
         Serve.default_config with
         Serve.capacity = 64;
         runners = 2;
         mem_budget_bytes = Some (64 * 1024);
         params = Spartan.test_params;
       }
       None)

(* --- cancellation ------------------------------------------------------- *)

(* Each streaming kernel, entered with an already-cancelled ambient token,
   must raise Pool.Cancel.Cancelled at its first chunk boundary — and the
   shared pool must come out reusable (the follow-up clean prove is the
   probe, pinned to the offline bytes). *)
let test_cancel_each_kernel () =
  let cancelled f =
    let tok = Pool.Cancel.create () in
    Pool.Cancel.cancel ~reason:"test" tok;
    match Pool.Cancel.with_token tok f with
    | _ -> Alcotest.fail "kernel ignored a cancelled token"
    | exception Pool.Cancel.Cancelled reason ->
      Alcotest.(check string) "cancel reason" "test" reason
  in
  let inst, asn = Synthetic.circuit ~n_constraints:2048 ~public_seed:true ~seed:0x51EDL () in
  let stream_engine = Engine.create ~stream_budget_bytes:65536 () in
  (* Spartan streaming pipeline (spmv staging + witness commit) *)
  cancelled (fun () -> Spartan.prove ~engine:stream_engine Spartan.test_params inst asn);
  (* Spartan in-memory pipeline (pool-level cancel in the kernels) *)
  cancelled (fun () -> Spartan.prove Spartan.test_params inst asn);
  (* Orion out-of-core commit (row staging loop) *)
  let table = Array.init 1024 (fun i -> Gf.of_int64 (Int64.of_int (i + 1))) in
  cancelled (fun () ->
      Orion.commit ~engine:stream_engine
        { Orion.default_params with Orion.rows = 16 }
        (Rng.create 5L) table);
  (* Streaming sumcheck (recompute-halves round loop) *)
  cancelled (fun () ->
      let n = 1024 in
      let mk salt =
        let s = Spill.create ~tag:"test-serve" ~spill:true n in
        let buf = Nocap_vec.Fv.create n in
        for i = 0 to n - 1 do
          Nocap_vec.Fv.set buf i (Gf.of_int64 (Int64.of_int ((salt * n) + i + 1)))
        done;
        Spill.write s ~pos:0 buf;
        s
      in
      let tables = [| mk 1; mk 2 |] in
      Fun.protect ~finally:(fun () -> Array.iter Spill.free tables) @@ fun () ->
      let t = Transcript.create "test-serve" in
      Sumcheck.prove_streaming ~comb_mults:1 ~budget_bytes:65536 t ~degree:2 ~tables
        ~comb:(fun v -> Gf.mul v.(0) v.(1))
        ~claim:Gf.zero);
  (* The pool survived all four aborts: a clean prove still works and is
     byte-identical to the oracle. *)
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  ignore proof;
  Alcotest.(check bool) "probe proves" true
    (Bytes.equal
       (Spartan.proof_to_bytes (fst (Spartan.prove Spartan.test_params inst asn)))
       (Spartan.proof_to_bytes proof))

(* Cancel a streamed service job after a random delay: the outcome is
   either Cancelled (caught mid-kernel) or a byte-identical proof (the
   job won the race) — and the service keeps proving correctly after. *)
let prop_cancel_leaves_pool_reusable =
  qcheck ~count:6 "serve: cancel mid-job, pool stays reusable"
    QCheck.(int_range 0 25)
    (fun delay_ms ->
      let srv = Lazy.force stream_srv in
      let id = submit_ok srv (prove_req "synthetic" 4096) in
      Unix.sleepf (float_of_int delay_ms /. 1000.0);
      ignore (Serve.cancel ~reason:"prop" srv id);
      (match Serve.await srv id with
      | Serve.Failed { error = Job_error.Cancelled _; _ } -> ()
      | Serve.Proof { bytes; _ } ->
        if not (Bytes.equal bytes (offline_bytes ~workload:"synthetic" ~scale:4096)) then
          QCheck.Test.fail_report "winner proof diverged"
      | Serve.Failed { error; _ } ->
        QCheck.Test.fail_reportf "wrong error: %s" (Job_error.to_string error)
      | Serve.Verified _ -> QCheck.Test.fail_report "verified?");
      Serve.forget srv id;
      (* reuse probe: an un-cancelled job must still prove exactly *)
      let probe = submit_ok srv (prove_req "litmus" 1) in
      match Serve.await srv probe with
      | Serve.Proof { bytes; _ } ->
        Serve.forget srv probe;
        Bytes.equal bytes (offline_bytes ~workload:"litmus" ~scale:1)
      | _ -> false)

(* --- deadlines ---------------------------------------------------------- *)

let prop_deadline_expired =
  qcheck ~count:6 "serve: expired deadline reports Deadline_exceeded"
    QCheck.(int_range 5 60)
    (fun deadline_ms ->
      let srv = Lazy.force slow_srv in
      let deadline_s = float_of_int deadline_ms /. 1000.0 in
      (* every attempt sleeps 120ms, so any deadline below that expires *)
      let id = submit_ok srv (prove_req ~deadline_s "litmus" 1) in
      match Serve.await srv id with
      | Serve.Failed { error = Job_error.Deadline_exceeded d; attempts } ->
        Serve.forget srv id;
        (* the reported deadline is the relative one we asked for, and a
           permanent error must not burn retries *)
        abs_float (d -. deadline_s) < 1e-9 && attempts <= 1
      | Serve.Failed { error; _ } ->
        QCheck.Test.fail_reportf "wrong error: %s" (Job_error.to_string error)
      | _ -> QCheck.Test.fail_report "slowed job beat an impossible deadline")

(* --- retries ------------------------------------------------------------ *)

let prop_retry_byte_identical =
  qcheck ~count:6 "serve: retried job's proof byte-identical to offline"
    QCheck.(oneofl [ ("litmus", 1); ("litmus", 2); ("synthetic", 512); ("synthetic", 1024) ])
    (fun (workload, scale) ->
      let srv = Lazy.force crash_srv in
      let id = submit_ok srv (prove_req workload scale) in
      match Serve.await srv id with
      | Serve.Proof { bytes; attempts; _ } ->
        Serve.forget srv id;
        (* first attempt always crashes, second succeeds *)
        attempts = 2 && Bytes.equal bytes (offline_bytes ~workload ~scale)
      | Serve.Failed { error; _ } ->
        QCheck.Test.fail_reportf "retried job died: %s" (Job_error.to_string error)
      | Serve.Verified _ -> false)

(* --- admission control -------------------------------------------------- *)

let test_queue_full () =
  let config =
    {
      Serve.default_config with
      Serve.capacity = 2;
      runners = 1;
      params = Spartan.test_params;
    }
  in
  let hook =
    Runtime_faults.hook
      {
        Runtime_faults.none with
        Runtime_faults.slow_every = 1;
        slow_s = 0.05;
        first_attempt_only = false;
      }
  in
  let srv = Serve.create ~fault_hook:hook ~config () in
  Fun.protect ~finally:(fun () -> ignore (Serve.shutdown srv)) @@ fun () ->
  let admitted = ref [] in
  let rejected = ref 0 in
  for _ = 1 to 6 do
    match Serve.submit srv (prove_req "litmus" 1) with
    | Ok id -> admitted := id :: !admitted
    | Error (Job_error.Queue_full cap) ->
      Alcotest.(check int) "reported capacity" 2 cap;
      incr rejected
    | Error e -> Alcotest.failf "wrong rejection: %s" (Job_error.to_string e)
  done;
  Alcotest.(check bool) "burst overflowed" true (!rejected > 0);
  List.iter
    (fun id ->
      match Serve.await srv id with
      | Serve.Proof _ -> ()
      | _ -> Alcotest.fail "admitted job did not prove")
    !admitted;
  let s = Serve.stats srv in
  Alcotest.(check int) "accounting" 6 (s.Serve.submitted + s.Serve.rejected)

let test_invalid_input () =
  let srv =
    Serve.create
      ~config:{ Serve.default_config with Serve.params = Spartan.test_params; runners = 1 }
      ()
  in
  Fun.protect ~finally:(fun () -> ignore (Serve.shutdown srv)) @@ fun () ->
  for i = 0 to 5 do
    match Serve.submit srv (Runtime_faults.malformed_request i) with
    | Error (Job_error.Invalid_input _) -> ()
    | Error e -> Alcotest.failf "malformed #%d misclassified: %s" i (Job_error.to_string e)
    | Ok _ -> Alcotest.failf "malformed #%d admitted" i
  done;
  let s = Serve.stats srv in
  Alcotest.(check int) "invalid counter" 6 s.Serve.invalid;
  Alcotest.(check int) "nothing admitted" 0 s.Serve.submitted

(* --- verify jobs -------------------------------------------------------- *)

let test_verify_kind () =
  let srv =
    Serve.create
      ~config:{ Serve.default_config with Serve.params = Spartan.test_params; runners = 1 }
      ()
  in
  Fun.protect ~finally:(fun () -> ignore (Serve.shutdown srv)) @@ fun () ->
  let good = offline_bytes ~workload:"litmus" ~scale:1 in
  let id =
    submit_ok srv
      { Serve.tenant = "v"; workload = "litmus"; scale = 1; kind = Serve.Verify good;
        deadline_s = None }
  in
  (match Serve.await srv id with
  | Serve.Verified _ -> ()
  | Serve.Failed { error; _ } -> Alcotest.failf "good proof: %s" (Job_error.to_string error)
  | Serve.Proof _ -> Alcotest.fail "proof outcome for a verify job");
  let bad = Bytes.copy good in
  Bytes.set bad (Bytes.length bad / 2) '\xFF';
  let id =
    submit_ok srv
      { Serve.tenant = "v"; workload = "litmus"; scale = 1; kind = Serve.Verify bad;
        deadline_s = None }
  in
  match Serve.await srv id with
  | Serve.Failed { error = Job_error.Verify_rejected _; attempts } ->
    (* a bad proof is the tenant's problem, not a transient fault *)
    Alcotest.(check int) "no retries on rejection" 1 attempts
  | Serve.Failed { error; _ } ->
    Alcotest.failf "wrong classification: %s" (Job_error.to_string error)
  | _ -> Alcotest.fail "corrupted proof accepted"

(* --- drain -------------------------------------------------------------- *)

let test_drain_rejects_new_work () =
  let srv =
    Serve.create
      ~config:{ Serve.default_config with Serve.params = Spartan.test_params; runners = 1 }
      ()
  in
  let id = submit_ok srv (prove_req "litmus" 1) in
  Serve.request_drain srv;
  Serve.drain srv;
  Alcotest.(check bool) "draining" true (Serve.draining srv);
  (match Serve.submit srv (prove_req "litmus" 1) with
  | Error Job_error.Draining -> ()
  | Error e -> Alcotest.failf "wrong error while draining: %s" (Job_error.to_string e)
  | Ok _ -> Alcotest.fail "admitted during drain");
  (* in-flight work finished, not shed *)
  (match Serve.await srv id with
  | Serve.Proof _ -> ()
  | _ -> Alcotest.fail "in-flight job lost during drain");
  ignore (Serve.shutdown srv)

(* Regression (REVIEW): submit's error paths release their reserved
   admission slot without creating a job; if that release is the one that
   brings [unfinished] to 0 it must wake a concurrently blocked drainer —
   the lost-wakeup bug hung the drain forever. Hammer the race: a domain
   spamming invalid submits (reserve slot → generation fails → release)
   while the main flow drains; the drainer must always come back. *)
let test_drain_wakes_on_submit_error () =
  for _round = 1 to 8 do
    let srv =
      Serve.create
        ~config:
          { Serve.default_config with Serve.capacity = 4; runners = 1;
            params = Spartan.test_params }
        ()
    in
    let stop = Atomic.make false in
    let submitter =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            match Serve.submit srv (prove_req "no-such-workload" 1) with
            | Error (Job_error.Invalid_input _ | Job_error.Draining) -> ()
            | Error e -> failwith (Job_error.to_string e)
            | Ok _ -> failwith "invalid workload admitted"
          done)
    in
    let drained = Atomic.make false in
    let drainer =
      Domain.spawn (fun () ->
          Serve.drain srv;
          Atomic.set drained true)
    in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not (Atomic.get drained)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.001
    done;
    Atomic.set stop true;
    if not (Atomic.get drained) then
      Alcotest.fail "drain hung against a submit error-path slot release";
    Domain.join submitter;
    Domain.join drainer;
    ignore (Serve.shutdown srv)
  done

(* --- committed-state lifecycle ------------------------------------------ *)

let test_free_committed_idempotent () =
  let table = Array.init 1024 (fun i -> Gf.of_int64 (Int64.of_int (i + 3))) in
  let params = { Orion.default_params with Orion.rows = 16 } in
  (* dense commit: free is a no-op, twice *)
  let committed, _ = Orion.commit params (Rng.create 9L) table in
  Orion.free_committed committed;
  Orion.free_committed committed;
  (* streamed commit: second free must not touch the recycled slot *)
  let live0 = Spill.live_files () in
  let engine = Engine.create ~stream_budget_bytes:65536 () in
  let committed, _ = Orion.commit ~engine params (Rng.create 9L) table in
  Orion.free_committed committed;
  Orion.free_committed committed;
  Orion.free_committed committed;
  Alcotest.(check int) "spill files released" live0 (Spill.live_files ())

(* --- config aggregation ------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_config_aggregates_errors () =
  let lookup_of l k = List.assoc_opt k l in
  (match
     Engine.Config.parse
       ~lookup:
         (lookup_of
            [ ("NOCAP_DOMAINS", "zero"); ("NOCAP_GC_MINOR_MB", "-4");
              ("NOCAP_SPIN_US", "1"); ("NOCAP_NATIVE", "bogus") ])
   with
  | Ok _ -> Alcotest.fail "malformed config accepted"
  | Error msg ->
    List.iter
      (fun var ->
        if not (contains msg var) then
          Alcotest.failf "aggregate error misses %s: %s" var msg)
      [ "NOCAP_DOMAINS"; "NOCAP_GC_MINOR_MB"; "NOCAP_NATIVE" ]);
  (* one bad knob must not poison a good one's parse *)
  match
    Engine.Config.parse
      ~lookup:(lookup_of [ ("NOCAP_DOMAINS", "3"); ("NOCAP_GC_MINOR_MB", "x") ])
  with
  | Ok _ -> Alcotest.fail "malformed NOCAP_GC_MINOR_MB accepted"
  | Error msg ->
    Alcotest.(check bool) "names the bad knob" true (contains msg "NOCAP_GC_MINOR_MB");
    Alcotest.(check bool) "does not blame the good knob" false (contains msg "NOCAP_DOMAINS")

(* --- cleanup ------------------------------------------------------------ *)

let test_shutdown_shared () =
  List.iter
    (fun srv ->
      let s = Serve.shutdown srv in
      Alcotest.(check int) "no jobs left behind" s.Serve.submitted
        (s.Serve.completed + s.Serve.failed))
    !shared;
  shared := [];
  Alcotest.(check int) "no spill files survive the suite" 0 (Spill.live_files ())

let suite =
  [
    Alcotest.test_case "cancel: every kernel honors the token" `Quick test_cancel_each_kernel;
    prop_cancel_leaves_pool_reusable;
    prop_deadline_expired;
    prop_retry_byte_identical;
    Alcotest.test_case "admission: queue overflow rejects" `Quick test_queue_full;
    Alcotest.test_case "admission: malformed input rejects" `Quick test_invalid_input;
    Alcotest.test_case "verify jobs classify rejection" `Quick test_verify_kind;
    Alcotest.test_case "drain stops admission, finishes in-flight" `Quick
      test_drain_rejects_new_work;
    Alcotest.test_case "drain wakes on submit error-path release" `Quick
      test_drain_wakes_on_submit_error;
    Alcotest.test_case "pcs: free_committed is idempotent" `Quick test_free_committed_idempotent;
    Alcotest.test_case "engine config aggregates all errors" `Quick test_config_aggregates_errors;
    Alcotest.test_case "shutdown shared services cleanly" `Quick test_shutdown_shared;
  ]
