(* Adversarial robustness tests for the verification boundary: the
   verifier, fed arbitrary or corrupted proof bytes, must return a
   categorized Verify_error — never raise, and never accept a mutant.

   The pinned corpus under corpus/faults/ replays inputs with historically
   dangerous shapes (huge length fields, truncated headers, legacy magics)
   on every runtest; the QCheck properties generate fresh hostile inputs
   each run; and a small seeded Fuzz sweep exercises the full mutation
   engine end to end. *)

module Rng = Zk_util.Rng
module E = Zk_pcs.Verify_error
module Fuzz = Nocap_faults.Fuzz
module Mutate = Nocap_faults.Mutate
module Targets = Nocap_faults.Targets

(* Building a target proves the fixed statement once — share them across
   test cases. *)
let orion_target = lazy (Targets.orion ())
let fri_target = lazy (Targets.fri ())
let both () = [ Lazy.force orion_target; Lazy.force fri_target ]

let never_accept_never_raise (t : Fuzz.target) data =
  match Fuzz.run_bytes t data with
  | Fuzz.Rejected _ -> true
  | Fuzz.Accepted ->
    Printf.eprintf "[%s] hostile input ACCEPTED (%d bytes)\n%!" t.Fuzz.name
      (Bytes.length data);
    false
  | Fuzz.Raised msg ->
    Printf.eprintf "[%s] verifier raised: %s\n%!" t.Fuzz.name msg;
    false

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- properties --------------------------------------------------------- *)

let prop_random_bytes =
  qcheck ~count:120 "random bytes: structured rejection, no exception"
    QCheck.(pair small_int (int_range 0 400))
    (fun (seed, len) ->
      let rng = Rng.create (Int64.of_int (succ seed)) in
      let data = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      List.for_all (fun t -> never_accept_never_raise t data) (both ()))

(* Random tails behind a well-formed header reach the body decoders (the
   pure-noise property above mostly dies at the magic check). Both in-tree
   tags and the legacy magic are exercised. *)
let prop_random_tail_behind_header =
  qcheck ~count:120 "valid header + random tail: structured rejection"
    QCheck.(triple small_int (int_range 0 400) (int_range 0 2))
    (fun (seed, len, header) ->
      let rng = Rng.create (Int64.of_int (succ seed)) in
      let prefix =
        match header with
        | 0 -> "NCAP2\x00\x00\x00\x01" (* orion tag *)
        | 1 -> "NCAP2\x00\x00\x00\x02" (* fri tag *)
        | _ -> "NCAP1\x00\x00\x00" (* legacy framing, no tag *)
      in
      let p = String.length prefix in
      let data =
        Bytes.init (p + len) (fun i ->
            if i < p then prefix.[i] else Char.chr (Rng.int rng 256))
      in
      List.for_all (fun t -> never_accept_never_raise t data) (both ()))

let prop_truncations =
  qcheck ~count:120 "every truncation of an honest proof is rejected"
    QCheck.(pair small_int bool)
    (fun (seed, use_fri) ->
      let t = if use_fri then Lazy.force fri_target else Lazy.force orion_target in
      let n = Bytes.length t.Fuzz.honest in
      let rng = Rng.create (Int64.of_int (succ seed)) in
      let len = Rng.int rng n in
      never_accept_never_raise t (Bytes.sub t.Fuzz.honest 0 len))

let prop_bit_flips =
  qcheck ~count:200 "any single bit flip of an honest proof is rejected"
    QCheck.(pair small_int bool)
    (fun (seed, use_fri) ->
      let t = if use_fri then Lazy.force fri_target else Lazy.force orion_target in
      let rng = Rng.create (Int64.of_int (succ seed)) in
      let data = Bytes.copy t.Fuzz.honest in
      let i = Rng.int rng (Bytes.length data) in
      let bit = Rng.int rng 8 in
      Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl bit)));
      never_accept_never_raise t data)

(* --- targeted cases ----------------------------------------------------- *)

let category t data =
  match Fuzz.run_bytes t data with
  | Fuzz.Rejected c -> E.category_name c
  | Fuzz.Accepted -> "ACCEPTED"
  | Fuzz.Raised m -> "RAISED " ^ m

let test_honest_verifies () =
  List.iter
    (fun (t : Fuzz.target) ->
      match Fuzz.run_bytes t t.Fuzz.honest with
      | Fuzz.Accepted -> ()
      | Fuzz.Rejected c ->
        Alcotest.failf "[%s] honest proof rejected as %s" t.Fuzz.name (E.category_name c)
      | Fuzz.Raised m -> Alcotest.failf "[%s] honest proof raised %s" t.Fuzz.name m)
    (both ())

let test_legacy_magic_is_bad_header () =
  List.iter
    (fun (t : Fuzz.target) ->
      let data = Bytes.copy t.Fuzz.honest in
      Bytes.blit_string "NCAP1\x00\x00\x00" 0 data 0 8;
      Alcotest.(check string)
        (t.Fuzz.name ^ ": legacy magic")
        "bad_header" (category t data))
    (both ())

let test_backend_mismatch_is_bad_header () =
  (* An honest fri proof fed to the orion pipeline (and vice versa) dies at
     the tag check, not deep in the body decoder. *)
  let orion = Lazy.force orion_target in
  let fri = Lazy.force fri_target in
  Alcotest.(check string) "fri blob, orion verifier" "bad_header"
    (category orion fri.Fuzz.honest);
  Alcotest.(check string) "orion blob, fri verifier" "bad_header"
    (category fri orion.Fuzz.honest)

(* --- pinned corpus ------------------------------------------------------ *)

let corpus_dir = "corpus/faults"

let test_corpus_replays () =
  List.iter
    (fun (t : Fuzz.target) ->
      let results = Fuzz.replay_corpus t ~dir:corpus_dir in
      Alcotest.(check bool)
        (t.Fuzz.name ^ ": corpus is non-empty")
        true
        (List.length results > 0);
      List.iter
        (fun (file, verdict) ->
          match verdict with
          | Fuzz.Rejected _ -> ()
          | Fuzz.Accepted -> Alcotest.failf "[%s] corpus %s ACCEPTED" t.Fuzz.name file
          | Fuzz.Raised m ->
            Alcotest.failf "[%s] corpus %s raised %s" t.Fuzz.name file m)
        results)
    (both ())

(* --- seeded sweep ------------------------------------------------------- *)

let test_sweep_clean () =
  List.iter
    (fun (t : Fuzz.target) ->
      let r = Fuzz.sweep ~seed:5L ~byte_mutants:250 ~structured_rounds:2 t in
      if not (Fuzz.clean r) then begin
        Format.eprintf "%a@?" Fuzz.pp_report r;
        Alcotest.failf "[%s] fault sweep not clean: %d accepted, %d raised"
          r.Fuzz.target_name r.Fuzz.accepted r.Fuzz.raised
      end;
      (* Every structural mutator must have produced at least one mutant
         each round — a silently inapplicable mutator is dead coverage. *)
      Alcotest.(check bool)
        (t.Fuzz.name ^ ": structural mutators applicable")
        true
        (r.Fuzz.structured_mutants >= List.length t.Fuzz.structured))
    (both ())

let suite =
  [
    Alcotest.test_case "honest proofs verify" `Quick test_honest_verifies;
    Alcotest.test_case "legacy magic -> bad_header" `Quick test_legacy_magic_is_bad_header;
    Alcotest.test_case "backend mismatch -> bad_header" `Quick
      test_backend_mismatch_is_bad_header;
    Alcotest.test_case "pinned corpus replays" `Quick test_corpus_replays;
    Alcotest.test_case "seeded sweep is clean" `Quick test_sweep_clean;
    prop_random_bytes;
    prop_random_tail_behind_header;
    prop_truncations;
    prop_bit_flips;
  ]
