(* The expression-language front end and the compile-time SpMV scheduler. *)

module Gf = Zk_field.Gf
module Lang = Zk_r1cs.Lang
module R1cs = Zk_r1cs.R1cs
module Sparse = Zk_r1cs.Sparse
module Spartan = Zk_spartan.Spartan
module Spmv = Nocap_model.Spmv_compile
module Vm = Nocap_model.Vm
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

open Lang

(* --- language --- *)

let test_interpreter_basics () =
  let env = { inputs = [ ("x", 10L) ]; secrets = [ ("s", 3L) ] } in
  Alcotest.check gf "const" (Gf.of_int 7) (interpret env (Const 7L));
  Alcotest.check gf "var" (Gf.of_int 10) (interpret env (Var "x"));
  Alcotest.check gf "arith" (Gf.of_int 39)
    (interpret env (Add (Mul (Var "x", Var "s"), Sub (Var "x", Const 1L))));
  Alcotest.check gf "eq true" Gf.one (interpret env (Eq (Var "s", Const 3L)));
  Alcotest.check gf "lt" Gf.one (interpret env (Lt (8, Var "s", Var "x")));
  Alcotest.check gf "if" (Gf.of_int 10)
    (interpret env (If (Lt (8, Var "s", Var "x"), Var "x", Var "s")));
  Alcotest.check gf "let" (Gf.of_int 36)
    (interpret env (Let ("t", Add (Var "s", Var "s"), Mul (Var "t", Add (Var "t", Const 0L)))));
  Alcotest.check gf "boolean algebra" Gf.one
    (interpret env (Or (And (Eq (Var "s", Const 4L), Const 1L), Not (Eq (Var "x", Const 0L)))))

let test_interpreter_errors () =
  let env = { inputs = []; secrets = [] } in
  let raises e =
    try
      ignore (interpret env e);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unbound" true (raises (Var "nope"));
  Alcotest.(check bool) "non-boolean condition" true (raises (If (Const 5L, Const 1L, Const 2L)));
  Alcotest.(check bool) "width overflow" true (raises (Lt (4, Const 100L, Const 3L)))

let test_compile_matches_interpreter () =
  let env = { inputs = [ ("x", 12L); ("y", 40L) ]; secrets = [ ("s", 7L) ] } in
  let expr =
    Let
      ( "d",
        Sub (Var "y", Var "x"),
        If
          ( Lt (16, Var "s", Var "d"),
            Mul (Var "d", Add (Var "s", Const 1L)),
            Var "x" ) )
  in
  let program = [ Reveal ("out", expr); Assert_bool (Lt (16, Var "x", Var "y")) ] in
  let expected = interpret_program env program in
  let inst, asn, outputs = compile env program in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "output name" n1 n2;
      Alcotest.check gf "output value" v1 v2)
    expected outputs

let test_compiled_program_proves () =
  (* Prove knowledge of a secret s with s^2 + s + 7 = claim, s < 100. *)
  let env = { inputs = [ ("claim", 63L) ]; secrets = [ ("s", 7L) ] } in
  let program =
    [
      Assert_eq (Add (Mul (Var "s", Var "s"), Add (Var "s", Const 7L)), Var "claim");
      Assert_bool (Lt (8, Var "s", Const 100L));
    ]
  in
  let inst, asn, _ = compile env program in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lang proof failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_failed_assertion_raises () =
  let env = { inputs = []; secrets = [ ("s", 2L) ] } in
  let program = [ Assert_eq (Var "s", Const 3L) ] in
  Alcotest.(check bool) "compile refuses" true
    (try
       ignore (compile env program);
       false
     with Invalid_argument _ -> true)

(* Random expression generator for the differential property test. *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Rng.int rng 3 with
    | 0 -> Const (Int64.of_int (Rng.int rng 50))
    | 1 -> Var "x"
    | _ -> Var "s"
  else begin
    let sub () = gen_expr rng (depth - 1) in
    match Rng.int rng 6 with
    | 0 -> Add (sub (), sub ())
    | 1 -> Sub (sub (), sub ())
    | 2 -> Mul (sub (), sub ())
    | 3 -> Let ("t", sub (), Add (Var "t", Var "t"))
    | 4 -> If (Eq (sub (), sub ()), sub (), sub ())
    | _ -> Eq (sub (), sub ())
  end

let prop_compile_differential =
  QCheck.Test.make ~count:40 ~name:"compiled circuits agree with the interpreter"
    QCheck.(pair small_nat (int_range 0 4))
    (fun (seed, depth) ->
      let rng = Rng.create (Int64.of_int ((seed * 31) + depth)) in
      let env = { inputs = [ ("x", Int64.of_int (Rng.int rng 100)) ];
                  secrets = [ ("s", Int64.of_int (Rng.int rng 100)) ] } in
      let expr = gen_expr rng depth in
      let program = [ Reveal ("out", expr) ] in
      let expected = interpret_program env program in
      let inst, asn, outputs = compile env program in
      R1cs.satisfied inst asn
      && List.for_all2 (fun (_, a) (_, b) -> Gf.equal a b) expected outputs)

(* --- SpMV scheduler --- *)

let random_band_matrix rng ~n ~band ~nnz =
  let entries = ref [] in
  for _ = 1 to nnz do
    let r = Rng.int rng n in
    let lo = max 0 (r - band) and hi = min (n - 1) (r + band) in
    let c = lo + Rng.int rng (hi - lo + 1) in
    entries := (r, c, Gf.random rng) :: !entries
  done;
  Sparse.of_entries ~nrows:n ~ncols:n !entries

let test_spmv_matches_reference () =
  let rng = Rng.create 300L in
  List.iter
    (fun (n, k, band, nnz) ->
      let m = random_band_matrix rng ~n ~band ~nnz in
      let x = Array.init n (fun _ -> Gf.random rng) in
      let sched = Spmv.compile ~vector_len:k m in
      let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:(2 * n / k + List.length sched.Spmv.coeff_slots + 4) in
      let y = Spmv.run vm sched x in
      let expected = Sparse.spmv m x in
      Array.iteri
        (fun i e -> Alcotest.check gf (Printf.sprintf "n=%d y[%d]" n i) e y.(i))
        expected)
    [ (16, 4, 2, 20); (64, 8, 4, 100); (128, 16, 8, 400); (64, 64, 16, 200) ]

let test_spmv_traffic_claims () =
  let rng = Rng.create 301L in
  let n = 128 and k = 16 in
  let m = random_band_matrix rng ~n ~band:4 ~nnz:500 in
  let sched = Spmv.compile ~vector_len:k m in
  (* Every matrix value is streamed exactly once. *)
  Alcotest.(check int) "matrix read once" (Sparse.nnz m) sched.Spmv.matrix_values_streamed;
  (* Band structure gives vector reuse: far fewer chunk loads than nonzeros,
     and no more than one load per (output chunk, input chunk) pair. *)
  Alcotest.(check bool) "vector reuse" true (sched.Spmv.x_chunk_loads < Sparse.nnz m);
  Alcotest.(check bool) "banded access stays near the diagonal" true
    (sched.Spmv.x_chunk_loads <= (n / k) * 3)

let test_spmv_on_r1cs_matrix () =
  (* The real A matrix of a workload circuit through the scheduler. *)
  let inst, asn = Zk_workloads.Synthetic.circuit ~n_constraints:120 ~seed:302L () in
  let m = inst.R1cs.a in
  let k = 16 in
  let x = R1cs.z inst asn in
  let sched = Spmv.compile ~vector_len:k m in
  let slots = Array.length x / k * 2 + List.length sched.Spmv.coeff_slots + 4 in
  let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:slots in
  let y = Spmv.run vm sched x in
  let expected = Sparse.spmv m x in
  Array.iteri (fun i e -> Alcotest.check gf (Printf.sprintf "Az[%d]" i) e y.(i)) expected

let test_spmv_rejects_bad_dims () =
  let m = Sparse.of_entries ~nrows:12 ~ncols:12 [ (0, 0, Gf.one) ] in
  Alcotest.(check bool) "non-multiple dims" true
    (try
       ignore (Spmv.compile ~vector_len:8 m);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "interpreter basics" `Quick test_interpreter_basics;
    Alcotest.test_case "interpreter errors" `Quick test_interpreter_errors;
    Alcotest.test_case "compile matches interpreter" `Quick test_compile_matches_interpreter;
    Alcotest.test_case "compiled program proves" `Quick test_compiled_program_proves;
    Alcotest.test_case "failed assertion raises" `Quick test_failed_assertion_raises;
    Alcotest.test_case "spmv matches reference" `Quick test_spmv_matches_reference;
    Alcotest.test_case "spmv traffic claims" `Quick test_spmv_traffic_claims;
    Alcotest.test_case "spmv on R1CS matrix" `Quick test_spmv_on_r1cs_matrix;
    Alcotest.test_case "spmv rejects bad dims" `Quick test_spmv_rejects_bad_dims;
    QCheck_alcotest.to_alcotest prop_compile_differential;
  ]
