(* Sumcheck completeness and soundness tests. *)

module Gf = Zk_field.Gf
module Sumcheck = Zk_sumcheck.Sumcheck
module Transcript = Zk_hash.Transcript
module Mle = Zk_poly.Mle
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let random_table rng l = Array.init (1 lsl l) (fun _ -> Gf.random rng)

let sum_over_cube tables comb =
  let n = Array.length tables.(0) in
  let acc = ref Gf.zero in
  for b = 0 to n - 1 do
    acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) tables))
  done;
  !acc

let run_roundtrip ~l ~degree ~tables ~comb =
  let claim = sum_over_cube tables comb in
  let pt = Transcript.create "sumcheck-test" in
  let res = Sumcheck.prove pt ~degree ~tables ~comb ~claim in
  let vt = Transcript.create "sumcheck-test" in
  match Sumcheck.verify vt ~degree ~num_vars:l ~claim res.Sumcheck.proof with
  | Error e -> Alcotest.failf "verify failed: %s" (Zk_pcs.Verify_error.to_string e)
  | Ok v ->
    (* Challenges derived by both sides must agree (same transcript). *)
    Array.iteri
      (fun i r -> Alcotest.check gf (Printf.sprintf "challenge %d" i) r v.Sumcheck.point.(i))
      res.Sumcheck.challenges;
    (* The reduced claim matches comb of the tables' MLEs at the point. *)
    Alcotest.check gf "final claim" (comb res.Sumcheck.final_values) v.Sumcheck.value;
    (* And final_values really are the MLE evaluations. *)
    Array.iteri
      (fun j t ->
        Alcotest.check gf
          (Printf.sprintf "table %d folded correctly" j)
          (Mle.eval t v.Sumcheck.point)
          res.Sumcheck.final_values.(j))
      tables;
    res

let test_single_table () =
  (* Listing 1: prove sum of a single multilinear table (degree 1). *)
  let rng = Rng.create 40L in
  let tables = [| random_table rng 5 |] in
  ignore (run_roundtrip ~l:5 ~degree:1 ~tables ~comb:(fun v -> v.(0)))

let test_product_of_two () =
  let rng = Rng.create 41L in
  let tables = [| random_table rng 4; random_table rng 4 |] in
  ignore (run_roundtrip ~l:4 ~degree:2 ~tables ~comb:(fun v -> Gf.mul v.(0) v.(1)))

let test_spartan_shape () =
  (* The degree-3 Spartan combination eq * (az * bz - cz). *)
  let rng = Rng.create 42L in
  let tables = Array.init 4 (fun _ -> random_table rng 6) in
  let comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  ignore (run_roundtrip ~l:6 ~degree:3 ~tables ~comb)

let test_wrong_claim_rejected () =
  let rng = Rng.create 43L in
  let tables = [| random_table rng 4 |] in
  let comb v = v.(0) in
  let claim = Gf.add (sum_over_cube tables comb) Gf.one in
  let pt = Transcript.create "sumcheck-test" in
  (* A cheating prover can still produce rounds, but the verifier's final
     reduced value will not match the true MLE evaluation. *)
  let res = Sumcheck.prove pt ~degree:1 ~tables ~comb ~claim in
  let vt = Transcript.create "sumcheck-test" in
  match Sumcheck.verify vt ~degree:1 ~num_vars:4 ~claim res.Sumcheck.proof with
  | Error _ -> () (* round check already caught it *)
  | Ok v ->
    Alcotest.(check bool) "final oracle check must fail" false
      (Gf.equal (Mle.eval tables.(0) v.Sumcheck.point) v.Sumcheck.value)

let test_tampered_round_rejected () =
  let rng = Rng.create 44L in
  let tables = [| random_table rng 4; random_table rng 4 |] in
  let comb v = Gf.mul v.(0) v.(1) in
  let claim = sum_over_cube tables comb in
  let pt = Transcript.create "sumcheck-test" in
  let res = Sumcheck.prove pt ~degree:2 ~tables ~comb ~claim in
  let proof = res.Sumcheck.proof in
  proof.Sumcheck.round_polys.(2).(1) <- Gf.add proof.Sumcheck.round_polys.(2).(1) Gf.one;
  let vt = Transcript.create "sumcheck-test" in
  (match Sumcheck.verify vt ~degree:2 ~num_vars:4 ~claim proof with
  | Error _ -> ()
  | Ok v ->
    Alcotest.(check bool) "tampered proof must not survive oracle check" false
      (Gf.equal
         (Gf.mul (Mle.eval tables.(0) v.Sumcheck.point) (Mle.eval tables.(1) v.Sumcheck.point))
         v.Sumcheck.value))

let test_wrong_transcript_rejected () =
  (* Verifier with a different domain gets different challenges; the final
     oracle check then fails (challenge binding). *)
  let rng = Rng.create 45L in
  let tables = [| random_table rng 3 |] in
  let comb v = v.(0) in
  let claim = sum_over_cube tables comb in
  let pt = Transcript.create "sumcheck-test" in
  let res = Sumcheck.prove pt ~degree:1 ~tables ~comb ~claim in
  let vt = Transcript.create "different-domain" in
  match Sumcheck.verify vt ~degree:1 ~num_vars:3 ~claim res.Sumcheck.proof with
  | Error _ -> ()
  | Ok v ->
    Alcotest.(check bool) "divergent challenges break the oracle check" false
      (Gf.equal (Mle.eval tables.(0) v.Sumcheck.point) v.Sumcheck.value)

let test_stats () =
  let rng = Rng.create 46L in
  let l = 6 in
  let tables = [| random_table rng l |] in
  let claim = sum_over_cube tables (fun v -> v.(0)) in
  let pt = Transcript.create "sumcheck-test" in
  let res = Sumcheck.prove pt ~degree:1 ~tables ~comb:(fun v -> v.(0)) ~claim in
  Alcotest.(check int) "rounds" l res.Sumcheck.stats.Sumcheck.rounds;
  (* Fold multiplications: sum over rounds of half = 2^(l-1) + ... + 1. *)
  Alcotest.(check int) "fold mults" ((1 lsl l) - 1) res.Sumcheck.stats.Sumcheck.mults

let prop_roundtrip_random_degrees =
  QCheck.Test.make ~count:20 ~name:"sumcheck roundtrip across sizes and degrees"
    QCheck.(pair (int_range 1 7) (int_range 1 3))
    (fun (l, k) ->
      let rng = Rng.create (Int64.of_int ((l * 100) + k)) in
      let tables = Array.init k (fun _ -> random_table rng l) in
      let comb v = Array.fold_left Gf.mul Gf.one v in
      let claim = sum_over_cube tables comb in
      let pt = Transcript.create "sumcheck-prop" in
      let res = Sumcheck.prove pt ~degree:k ~tables ~comb ~claim in
      let vt = Transcript.create "sumcheck-prop" in
      match Sumcheck.verify vt ~degree:k ~num_vars:l ~claim res.Sumcheck.proof with
      | Error _ -> false
      | Ok v -> Gf.equal (comb res.Sumcheck.final_values) v.Sumcheck.value)

let suite =
  [
    Alcotest.test_case "single table (Listing 1)" `Quick test_single_table;
    Alcotest.test_case "product of two" `Quick test_product_of_two;
    Alcotest.test_case "Spartan-shaped degree 3" `Quick test_spartan_shape;
    Alcotest.test_case "wrong claim rejected" `Quick test_wrong_claim_rejected;
    Alcotest.test_case "tampered round rejected" `Quick test_tampered_round_rejected;
    Alcotest.test_case "wrong transcript rejected" `Quick test_wrong_transcript_rejected;
    Alcotest.test_case "prover stats" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_degrees;
  ]
