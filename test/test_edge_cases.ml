(* Edge cases and failure injection across the stack: minimum sizes,
   boundary widths, malformed arguments, and pathological inputs. *)

module Gf = Zk_field.Gf
module Mle = Zk_poly.Mle
module Orion = Zk_orion.Orion
module Spartan = Zk_spartan.Spartan
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module R1cs = Zk_r1cs.R1cs
module Sumcheck = Zk_sumcheck.Sumcheck
module Transcript = Zk_hash.Transcript
module Merkle = Zk_merkle.Merkle
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let test_minimum_spartan_instance () =
  (* log_size = 1: one constraint, one witness, io = [1]. *)
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 1) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var x) (Builder.lc_var x);
  let inst, asn = Builder.finalize b in
  Alcotest.(check int) "log size" 1 inst.R1cs.log_size;
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "minimum instance failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_orion_single_element () =
  (* A 1-element table: num_vars = 0, rows = cols = 1. *)
  let params = { Orion.default_params with Orion.rows = 8 } in
  let rng = Rng.create 200L in
  let table = [| Gf.of_int 42 |] in
  let committed, cm = Orion.commit params rng table in
  let pt = Transcript.create "edge" in
  Orion.absorb_commitment pt cm;
  let value, proof = Orion.prove_eval params committed pt [||] in
  Alcotest.check gf "value" (Gf.of_int 42) value;
  let vt = Transcript.create "edge" in
  Orion.absorb_commitment vt cm;
  match Orion.verify_eval params cm vt [||] value proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "single-element orion failed: %s" (Zk_pcs.Verify_error.to_string e)

let test_sumcheck_one_variable () =
  let tables = [| [| Gf.of_int 3; Gf.of_int 4 |] |] in
  let claim = Gf.of_int 7 in
  let pt = Transcript.create "edge" in
  let res = Sumcheck.prove pt ~degree:1 ~tables ~comb:(fun v -> v.(0)) ~claim in
  let vt = Transcript.create "edge" in
  match Sumcheck.verify vt ~degree:1 ~num_vars:1 ~claim res.Sumcheck.proof with
  | Ok v ->
    Alcotest.check gf "reduced claim" (Mle.eval tables.(0) v.Sumcheck.point) v.Sumcheck.value
  | Error e -> Alcotest.failf "1-variable sumcheck: %s" (Zk_pcs.Verify_error.to_string e)

let test_bad_arguments_rejected () =
  Alcotest.(check bool) "sumcheck empty tables" true
    (raises_invalid (fun () ->
         ignore
           (Sumcheck.prove (Transcript.create "x") ~degree:1 ~tables:[||]
              ~comb:(fun _ -> Gf.zero) ~claim:Gf.zero)));
  Alcotest.(check bool) "sumcheck non-pow2" true
    (raises_invalid (fun () ->
         ignore
           (Sumcheck.prove (Transcript.create "x") ~degree:1
              ~tables:[| Array.make 3 Gf.zero |] ~comb:(fun v -> v.(0)) ~claim:Gf.zero)));
  Alcotest.(check bool) "mle dimension mismatch" true
    (raises_invalid (fun () -> ignore (Mle.eval (Array.make 4 Gf.zero) [| Gf.one |])));
  Alcotest.(check bool) "merkle empty" true
    (raises_invalid (fun () -> ignore (Merkle.build [||])));
  Alcotest.(check bool) "gadget width 0" true
    (raises_invalid (fun () ->
         let b = Builder.create () in
         ignore (Gadgets.bits_of b ~width:0 (Builder.witness b Gf.zero))));
  Alcotest.(check bool) "negative workload" true
    (raises_invalid (fun () ->
         ignore (Nocap_model.Workload.spartan_orion ~n_constraints:(-1.0) ())))

let test_gadget_boundary_widths () =
  let b = Builder.create () in
  (* width 62 comparisons and width 63 decompositions are the documented
     maxima. *)
  let big = Builder.witness b (Gf.of_int64 0x3FFF_FFFF_FFFF_FFFFL) in
  let bits = Gadgets.bits_of b ~width:63 big in
  Alcotest.(check int) "63 bits" 63 (Array.length bits);
  let x = Builder.witness b (Gf.of_int64 0x3FFF_FFFF_FFFF_FFFEL) in
  ignore (Gadgets.bits_of b ~width:62 x);
  let lt = Gadgets.less_than b ~width:62 x big in
  Alcotest.check gf "max-width comparison" Gf.one (Builder.value b lt);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Alcotest.(check bool) "width 64 rejected" true
    (raises_invalid (fun () -> ignore (Gadgets.bits_of b ~width:64 big)));
  Alcotest.(check bool) "less_than width 63 rejected" true
    (raises_invalid (fun () -> ignore (Gadgets.less_than b ~width:63 x big)))

let test_zero_and_extreme_field_values () =
  (* Witness values at the top of the field range survive the pipeline. *)
  let b = Builder.create () in
  let near_p = Gf.of_int64 (Int64.sub Gf.p 1L) in
  let x = Builder.witness b near_p in
  let y = Builder.witness b (Gf.inv near_p) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var y) (Builder.lc_const Gf.one);
  let z = Builder.witness b Gf.zero in
  Builder.constrain b (Builder.lc_var z) (Builder.lc_var x) (Builder.lc_var z);
  let inst, asn = Builder.finalize b in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "extreme values: %s" (Zk_pcs.Verify_error.to_string e)

let test_all_zero_witness () =
  (* An instance whose witness is identically zero still proves (exercises
     zero rows through RS encoding and Merkle hashing). *)
  let b = Builder.create () in
  for _ = 1 to 10 do
    let z = Builder.witness b Gf.zero in
    Builder.constrain b (Builder.lc_var z) (Builder.lc_var z) (Builder.lc_var z)
  done;
  let inst, asn = Builder.finalize b in
  let proof, _ = Spartan.prove Spartan.test_params inst asn in
  match Spartan.verify Spartan.test_params inst ~io:(R1cs.public_io inst asn) proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "zero witness: %s" (Zk_pcs.Verify_error.to_string e)

let test_vm_errors () =
  let module Vm = Nocap_model.Vm in
  let module Isa = Nocap_model.Isa in
  Alcotest.(check bool) "tiny vector rejected" true
    (raises_invalid (fun () -> ignore (Vm.create ~vector_len:2 ~num_regs:4 ~mem_slots:1)));
  let vm = Vm.create ~vector_len:8 ~num_regs:2 ~mem_slots:1 in
  Alcotest.(check bool) "bad register" true
    (raises_invalid (fun () -> Vm.exec vm [ Isa.Vadd (5, 0, 1) ]));
  Alcotest.(check bool) "bad memory slot" true
    (raises_invalid (fun () -> Vm.exec vm [ Isa.Vload (0, 3) ]));
  Alcotest.(check bool) "bad permutation length" true
    (raises_invalid (fun () -> Vm.exec vm [ Isa.Vshuffle (0, 1, [| 0; 1 |]) ]))

let test_interleave_vs_rotate_identity () =
  (* The paper's example: a rotation by 520 = 8 + 512 decomposes into a
     128-lane rotation plus a cross-row move; on the VM a single Vrotate must
     equal composing the two. *)
  let module Vm = Nocap_model.Vm in
  let module Isa = Nocap_model.Isa in
  let k = 1024 in
  let vm = Vm.create ~vector_len:k ~num_regs:4 ~mem_slots:2 in
  let rng = Rng.create 201L in
  let v = Array.init k (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 v;
  Vm.exec vm [ Isa.Vload (0, 0); Isa.Vrotate (1, 0, 520); Isa.Vstore (1, 1) ];
  let direct = Vm.read_mem vm 1 in
  Vm.exec vm [ Isa.Vload (0, 0); Isa.Vrotate (2, 0, 8); Isa.Vrotate (3, 2, 512); Isa.Vstore (1, 3) ];
  let composed = Vm.read_mem vm 1 in
  Array.iteri (fun i x -> Alcotest.check gf (Printf.sprintf "lane %d" i) x composed.(i)) direct

let suite =
  [
    Alcotest.test_case "minimum Spartan instance" `Quick test_minimum_spartan_instance;
    Alcotest.test_case "Orion single element" `Quick test_orion_single_element;
    Alcotest.test_case "sumcheck one variable" `Quick test_sumcheck_one_variable;
    Alcotest.test_case "bad arguments rejected" `Quick test_bad_arguments_rejected;
    Alcotest.test_case "gadget boundary widths" `Quick test_gadget_boundary_widths;
    Alcotest.test_case "extreme field values" `Quick test_zero_and_extreme_field_values;
    Alcotest.test_case "all-zero witness" `Quick test_all_zero_witness;
    Alcotest.test_case "VM errors" `Quick test_vm_errors;
    Alcotest.test_case "rotation decomposition" `Quick test_interleave_vs_rotate_identity;
  ]
